#ifndef ZEROBAK_REPLICATION_REPLICATION_H_
#define ZEROBAK_REPLICATION_REPLICATION_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/time.h"
#include "exec/thread_pool.h"
#include "journal/journal.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "replication/dirty_bitmap.h"
#include "replication/group_scheduler.h"
#include "sim/environment.h"
#include "sim/network.h"
#include "storage/array.h"

namespace zerobak::replication {

// Remote-copy mode (Section V: SDC vs ADC).
enum class ReplicationMode {
  kSynchronous,   // SDC: host ack waits for the remote site.
  kAsynchronous,  // ADC: host ack after the local journal write.
};

// Pair state machine, following the conventional remote-copy states.
enum class PairState {
  kCopy,       // Initial copy in progress; S-VOL not yet usable.
  kPaired,     // Steady state: updates flowing, S-VOL consistent.
  kSuspended,  // Replication stopped (overflow, link down or operator);
               // P-VOL writes are tracked in a dirty bitmap.
  kSwapped,    // After failover: S-VOL promoted, pair dissolved logically.
};

// Why a consistency group is suspended. Failure reasons are eligible for
// auto-resync; an operator suspension never is.
enum class SuspendReason {
  kNone,
  kOperator,         // Explicit SuspendGroup call.
  kJournalOverflow,  // The shared journal filled up (Section III-A-1).
  kAckTimeout,       // A shipped batch missed its apply-ack deadline.
  kResyncTimeout,    // A resync batch was lost in flight.
  kWireReject,       // The backup site nacked a corrupt wire frame.
  kMediaError,       // The journal volume failed an append (kDataLoss);
                     // backoff/resync retries until the media heals.
  kScrubRepair,      // The scrubber dirty-marked corrupt/divergent extents
                     // and suspended for a targeted resync.
};

const char* PairStateName(PairState state);
const char* ReplicationModeName(ReplicationMode mode);
const char* SuspendReasonName(SuspendReason reason);

using PairId = uint64_t;
using GroupId = uint64_t;

// Configuration of a consistency group: the shared journal and the
// transfer engine parameters (Section III-A-1).
struct ConsistencyGroupConfig {
  std::string name;
  uint64_t journal_capacity_bytes = 256ull << 20;  // 256 MiB.
  // How often the transfer engine wakes up to ship journal batches.
  SimDuration transfer_interval = Milliseconds(2);

  // --- Transfer pipeline (batch sizing + coalescing) ------------------------
  // Every batch-sizing knob lives here and is checked by Validate() when
  // the group is created: a zero batch size or inverted min/max bounds is
  // rejected up front instead of being silently rewritten. Normalized()
  // only clamps the values the engine computes itself at runtime
  // (adaptive resizing), which stay inside the validated bounds.
  //
  // Bytes shipped per wakeup. Under adaptive batching this is only the
  // starting point; the engine moves within [min, max].
  uint64_t transfer_batch_bytes = 4ull << 20;  // 4 MiB.
  // Scale the batch size: up (x2) while the journal backlog builds, down
  // (/2) when the link backlog grows past a few transfer intervals. Keeps
  // the drain rate >= the ingest rate without tripping ack deadlines.
  bool enable_adaptive_batching = true;
  uint64_t transfer_batch_min_bytes = 64ull << 10;  // 64 KiB.
  uint64_t transfer_batch_max_bytes = 16ull << 20;  // 16 MiB.
  // Fold duplicate (volume, block) overwrites inside a shipped batch down
  // to the newest payload: superseded records ship as header-only
  // tombstones, their payload bytes are freed from the primary journal,
  // and the batch applies atomically so every recovery point is still a
  // write-order prefix.
  bool enable_write_folding = true;
  // Within an atomically-applied batch, group records by volume and apply
  // them in LBA order through the WriteRun API (sequential store access).
  bool enable_sorted_apply = true;
  // Ship resync deltas as sorted extent runs (adjacent dirty blocks merged
  // into one multi-block record) instead of single blocks.
  bool enable_extent_resync = true;
  // Longest extent (in blocks) a single resync record may carry.
  uint32_t resync_max_extent_blocks = 256;
  // Compress shipped batches inside the wire frame. The frame (and its
  // CRC integrity check) is always on; this knob only controls whether
  // the body is run through the block compressor. Incompressible batches
  // fall back to the stored escape automatically.
  bool compress_transfers = true;

  // Returns a copy with the batch-sizing knobs forced into a sane shape:
  // min >= one default-sized record, max >= min, batch clamped into
  // [min, max], extent length >= 1. The engine uses this only for
  // RUNTIME adjustments (adaptive resizing never leaves sane bounds);
  // configs submitted to CreateConsistencyGroup must pass Validate()
  // as-is — bad knobs are an error, not a silent rewrite.
  ConsistencyGroupConfig Normalized() const;

  // Checks the knobs a user could plausibly get wrong: zero/negative
  // intervals and capacities, inverted or violated adaptive-batch bounds
  // (only checked when adaptive batching is on — ablation sweeps pin the
  // batch size with the bounds left at defaults), nonsensical backoff.
  // Returns InvalidArgumentError naming the offending field.
  Status Validate() const;

  // --- Failure detection and recovery ---------------------------------------
  // Grace period, measured from a shipped batch's latest possible arrival,
  // for the apply-ack to come back. A miss means the batch or its ack was
  // lost (a real partition drops in-flight traffic) and the group suspends
  // rather than silently stalling its watermarks. 0 disables detection.
  SimDuration ack_timeout = Milliseconds(50);
  // Automatically retry ResyncGroup after a *failure* suspension (overflow
  // or timeout — never an operator suspend), with capped exponential
  // backoff, until the link heals and the resync lands.
  bool auto_resync = true;
  SimDuration resync_backoff_initial = Milliseconds(10);
  SimDuration resync_backoff_max = Milliseconds(100);
};

struct PairConfig {
  std::string name;
  storage::VolumeId primary = 0;    // P-VOL on the main array.
  storage::VolumeId secondary = 0;  // S-VOL on the backup array.
  ReplicationMode mode = ReplicationMode::kAsynchronous;
  // Consistency group for asynchronous pairs; must be 0 (unset) for
  // synchronous pairs, which are standalone by definition.
  GroupId group = 0;
};

// Engine-wide tunables, fixed at construction.
struct EngineOptions {
  // Drive journal transfer with the event-driven GroupScheduler (armed by
  // appends/acks/link edges; idle groups cost zero simulation events).
  // When false, each group runs the legacy per-group PeriodicTask — kept
  // as the A/B baseline for the scale benchmark.
  bool event_driven_scheduler = true;
  // Housekeeping cadence of the scheduler's single slow heartbeat (the
  // rescue scan for groups with backlog but no pending edge).
  SimDuration scheduler_heartbeat = Milliseconds(50);
  // Compute lanes (including the simulator thread) for the engine's
  // parallel sections: per-chunk wire compression and CRC, chunked
  // decode, sorted batch apply and resync capture. 0 = one lane per
  // hardware thread; 1 = no workers, every stage runs inline (the legacy
  // serial path). Simulation results are bit-identical at any value —
  // parallel sections run entirely inside one sim event behind a join
  // barrier and merge in canonical order — so this knob trades host CPU
  // for wall-clock only.
  unsigned compute_threads = 0;
};

// Fault-injection knobs, settable at runtime as one struct so new lanes
// extend the struct instead of growing the engine's method surface.
struct FaultOptions {
  // Probability that a delivered wire frame has one random bit flipped
  // before the backup site decodes it (an in-flight corruption the CRC
  // must catch). Draws come from a dedicated engine-seeded Rng whose
  // stream continues across SetFaultOptions calls, so toggling a lane
  // mid-run keeps the simulation deterministic.
  double wire_corrupt_probability = 0.0;
};

// Point-in-time replication health of a consistency group.
struct GroupStats {
  journal::SequenceNumber written = 0;   // Main journal head.
  journal::SequenceNumber shipped = 0;   // Handed to the link.
  journal::SequenceNumber applied = 0;   // Applied on the backup array.
  // Highest sequence the backup has confirmed applied (the primary's
  // recovery watermark; anything in (acked, shipped] may be lost).
  journal::SequenceNumber acked = 0;
  uint64_t journal_used_bytes = 0;
  uint64_t journal_capacity_bytes = 0;
  uint64_t journal_overflows = 0;
  bool suspended = false;
  SuspendReason suspend_reason = SuspendReason::kNone;
  // Failure-detection counters.
  uint64_t ack_timeouts = 0;
  uint64_t resync_timeouts = 0;
  uint64_t auto_resync_attempts = 0;
  // The group's RPO: 0 when every write is acknowledged by the backup
  // site (acked == written and nothing is dirty), otherwise the age of
  // the oldest unacknowledged write — the data that would be lost if the
  // main site died right now. An idle, fully-caught-up group reports 0
  // no matter how long it sits (the old `now - last_applied_ack_time`
  // formula grew without bound on a quiescent group).
  SimDuration apply_lag = 0;
  // --- Transfer-pipeline health ---
  // Records tombstoned by write-folding and the payload bytes that never
  // hit the wire because of it.
  uint64_t records_folded = 0;
  uint64_t folded_bytes_saved = 0;
  // Extent records shipped by resyncs and the blocks they carried.
  uint64_t resync_extents = 0;
  uint64_t resync_blocks = 0;
  // Current (possibly adapted) transfer batch size.
  uint64_t transfer_batch_bytes_now = 0;
  // --- Wire format ---
  // Framed bytes handed to the link (post-compression) and the journal
  // bytes they represent (pre-compression).
  uint64_t wire_bytes_shipped = 0;
  uint64_t logical_bytes_shipped = 0;
  // logical / wire (>= 1 when compression wins; 1.0 before any traffic).
  double compression_ratio = 1.0;
  // Same ratio over only the newest kCompressionWindowBatches shipped
  // batches, so a config change (toggling compress_transfers) or a shift
  // in data compressibility shows up immediately instead of being
  // averaged away by hours of history.
  double compression_ratio_window = 1.0;
  // Batches currently inside that window.
  uint64_t compression_window_batches = 0;
  // Batches the backup site rejected on checksum mismatch (each one
  // nacks, suspends the group and reships via auto-resync).
  uint64_t checksum_rejects = 0;
};

// Result of a failover (disaster recovery takeover) on a group.
struct FailoverReport {
  // Sequence of the last record applied to the backup volumes.
  journal::SequenceNumber recovery_point = 0;
  // Records that were written at the main site but never made it.
  uint64_t lost_records = 0;
  // Ack-time of the last applied record; the backup image corresponds to
  // the main site as of this instant (RPO in time units).
  SimTime recovery_point_time = 0;
};

// Result of a failback (giveback to the repaired main site).
struct FailbackReport {
  // Blocks copied from the backup volumes onto the main volumes.
  uint64_t blocks_shipped = 0;
  // Main-side blocks that had diverged and were overwritten because
  // `force` was set.
  uint64_t conflicts_overwritten = 0;
};

class ReplicationEngine;
class Scrubber;
struct ScrubConfig;

namespace internal {
class AdcInterceptor;
class SyncInterceptor;
class SecondaryGuard;
class ReverseDirtyTracker;
}  // namespace internal

// A replication pair (P-VOL on the main array, S-VOL on the backup array).
class Pair {
 public:
  PairId id() const { return id_; }
  const PairConfig& config() const { return config_; }
  PairState state() const { return state_; }
  GroupId group() const { return group_; }
  // Blocks written while suspended (or, after a failover, on the P-VOL);
  // shipped again on resync / reconciled on failback.
  size_t dirty_blocks() const { return dirty_.count(); }
  // Blocks the business wrote on the S-VOL after a failover.
  size_t reverse_dirty_blocks() const { return reverse_dirty_.count(); }

 private:
  friend class ReplicationEngine;
  friend class Scrubber;
  friend class internal::AdcInterceptor;
  friend class internal::SyncInterceptor;
  friend class internal::ReverseDirtyTracker;

  PairId id_ = 0;
  PairConfig config_;
  GroupId group_ = 0;  // 0 for synchronous pairs.
  PairState state_ = PairState::kCopy;
  // Hierarchical (two-level) bitmaps sized to the volume at pair creation;
  // resync walks them as sorted extent runs instead of hash-ordered blocks.
  DirtyBitmap dirty_;
  DirtyBitmap reverse_dirty_;
  // Sync-mode bookkeeping: writes in flight to the remote site.
  uint64_t inflight_ = 0;
};

// The remote-copy feature of a main/backup array pair: creates and drives
// consistency groups (shared-journal ADC), standalone synchronous pairs,
// initial copy, journal transfer/apply, suspend/resync and failover.
//
// One engine instance manages replication in one direction
// (primary array -> secondary array), like the demonstration system's
// main-to-backup copy (Fig. 1).
class ReplicationEngine {
 public:
  ReplicationEngine(sim::SimEnvironment* env, storage::StorageArray* primary,
                    storage::StorageArray* secondary,
                    sim::NetworkLink* to_secondary,
                    sim::NetworkLink* to_primary,
                    EngineOptions options = {});
  ~ReplicationEngine();

  ReplicationEngine(const ReplicationEngine&) = delete;
  ReplicationEngine& operator=(const ReplicationEngine&) = delete;

  // --- Consistency groups -------------------------------------------------
  StatusOr<GroupId> CreateConsistencyGroup(ConsistencyGroupConfig config);
  // Group must have no pairs.
  Status DeleteConsistencyGroup(GroupId id);
  std::vector<GroupId> ListGroups() const;
  StatusOr<GroupStats> GetGroupStats(GroupId id) const;
  StatusOr<std::string> GetGroupName(GroupId id) const;

  // --- Pairs ---------------------------------------------------------------
  // Creates a replication pair. `config.mode` selects the flavor:
  //  - kAsynchronous: journal-backed pair inside the consistency group
  //    named by `config.group` (required). The initial copy starts
  //    immediately; the pair reaches kPaired once the base image has
  //    been transferred.
  //  - kSynchronous: standalone pair (no journal); `config.group` must
  //    be 0.
  StatusOr<PairId> CreatePair(const PairConfig& config);

  // Dissolves a pair, unregistering all interceptors. The S-VOL keeps its
  // current content.
  Status DeletePair(PairId id);

  const Pair* GetPair(PairId id) const;
  // Finds the pair whose P-VOL is `primary`, or 0 if none.
  PairId FindPairByPrimary(storage::VolumeId primary) const;
  std::vector<PairId> ListPairs() const;
  std::vector<PairId> ListGroupPairs(GroupId id) const;

  // --- Operations ----------------------------------------------------------
  // Suspends a whole consistency group (all its pairs) or one sync pair.
  Status SuspendGroup(GroupId id);
  Status SuspendSyncPair(PairId id);

  // Re-establishes replication after a suspension by shipping the dirty
  // blocks; pairs return to kPaired when the resync batch lands.
  Status ResyncGroup(GroupId id);
  Status ResyncSyncPair(PairId id);

  // Disaster-recovery takeover: stops the group, applies every record that
  // reached the backup site, promotes the S-VOLs to writable and reports
  // the recovery point. Works even when the main array has failed. Writes
  // made to the S-VOLs after the takeover are dirty-tracked so a later
  // failback ships only the delta.
  StatusOr<FailoverReport> FailoverGroup(GroupId id);

  // Giveback after the main site is repaired: ships the blocks the
  // business wrote on the backup site during the outage back onto the
  // main volumes, write-protects the S-VOLs again and resumes forward
  // (main -> backup) replication with fresh journals.
  //
  // Preconditions: the group is failed over, the main array is healthy
  // and both links are connected. The backup-site application must be
  // quiesced before calling (its volumes become S-VOLs again
  // immediately). If the main volumes also changed after the failover
  // (split brain), failback is rejected unless `force` is set, in which
  // case the backup side wins.
  StatusOr<FailbackReport> FailbackGroup(GroupId id, bool force = false);

  // True once every pair of the group has finished its initial copy.
  bool GroupInitialCopyDone(GroupId id) const;

  // Toggles wire-frame body compression for an existing group. Takes
  // effect on the next shipped batch; the windowed compression ratio in
  // GroupStats reflects the change within kCompressionWindowBatches.
  Status SetGroupCompression(GroupId id, bool compress);

  // The group's current RPO (same definition as GroupStats::apply_lag),
  // cheap enough to poll on a timer — this is what RpoTracker samples.
  StatusOr<SimDuration> GroupRpo(GroupId id) const;

  // --- Observability --------------------------------------------------------
  // Attaches (or, with nulls, detaches) a metric registry and a trace
  // ring. Counters/histograms are resolved once here and updated through
  // cached pointers; every hot-path hook is a single pointer check when
  // detached. Journals of existing and future groups are instrumented
  // under "journal.g<id>.{main,backup}.*".
  void AttachObservability(obs::MetricRegistry* registry,
                           obs::TraceRing* trace);

  // --- Introspection for tests/benches -------------------------------------
  journal::JournalVolume* primary_journal(GroupId id);
  journal::JournalVolume* secondary_journal(GroupId id);
  uint64_t total_records_shipped() const { return records_shipped_; }
  uint64_t total_records_applied() const { return records_applied_; }

  // --- Fault injection ------------------------------------------------------
  // Replaces the engine's fault-injection knobs (see FaultOptions).
  // Driven by the fault framework's corruption lane; RNG streams are
  // engine-owned and continue across calls, so runs stay deterministic.
  void SetFaultOptions(const FaultOptions& options) {
    fault_options_ = options;
  }
  const FaultOptions& fault_options() const { return fault_options_; }
  [[deprecated("use SetFaultOptions(FaultOptions)")]]
  void set_wire_corrupt_probability(double p) {
    fault_options_.wire_corrupt_probability = p;
  }
  // Frames actually corrupted by the injector so far.
  uint64_t wire_frames_corrupted() const { return wire_frames_corrupted_; }

  // --- Scheduler introspection ----------------------------------------------
  // True when journal transfer runs on the event-driven GroupScheduler
  // (EngineOptions::event_driven_scheduler).
  bool event_driven() const { return scheduler_ != nullptr; }
  // Scheduler counters; zeros in legacy per-group-timer mode.
  SchedulerStats scheduler_stats() const {
    return scheduler_ != nullptr ? scheduler_->stats() : SchedulerStats{};
  }

  // --- Compute pool introspection -------------------------------------------
  // The engine's parallel-section pool; null when compute_threads
  // resolved to 1 (pure inline mode). Benches and tests use this to
  // observe lane count and section/steal counters.
  exec::ThreadPool* compute_pool() { return compute_pool_.get(); }

  // --- At-rest integrity scrubbing ------------------------------------------
  // Starts the background scrubber (see replication/scrubber.h): a
  // low-priority walk over every consistency-group volume that verifies
  // block checksums, compares primary/secondary fingerprints and
  // self-heals what it finds. Scheduled through the GroupScheduler in
  // event-driven mode (pseudo-id >= kScrubSchedBase), a periodic task
  // otherwise. Fails if already enabled.
  Status EnableScrubbing(const ScrubConfig& config);
  Scrubber* scrubber() { return scrubber_.get(); }
  const Scrubber* scrubber() const { return scrubber_.get(); }

 private:
  friend class Scrubber;
  friend class internal::AdcInterceptor;
  friend class internal::SyncInterceptor;

  // One dirty extent (a run of adjacent blocks) captured for a resync
  // batch. With extent resync disabled every extent has count == 1.
  // Group resyncs capture zero-copy when the run sits inside one slab
  // chunk: `view` borrows the primary's current content, and a
  // pre-overwrite hook materializes it into `data` the moment the host
  // writes into the captured range while the batch is on the wire.
  struct ResyncExtent {
    PairId pair = 0;
    uint64_t lba = 0;
    uint32_t count = 0;
    std::string_view view;
    std::string data;
    // Capture-time CRC32C of the payload, verified again at delivery: a
    // payload corrupted while the batch sat on the wire is skipped (its
    // blocks stay dirty for the next resync round) instead of landing on
    // the S-VOL.
    uint32_t crc = 0;
    std::string_view payload() const {
      return view.data() != nullptr ? view : std::string_view(data);
    }
  };

  struct Group {
    GroupId id = 0;
    ConsistencyGroupConfig config;
    storage::JournalId primary_journal = 0;
    storage::JournalId secondary_journal = 0;
    std::vector<PairId> pairs;
    // P-VOL id -> pair, for the applier.
    std::unordered_map<storage::VolumeId, PairId> by_primary;
    std::unique_ptr<sim::PeriodicTask> transfer_task;
    bool suspended = false;
    SuspendReason suspend_reason = SuspendReason::kNone;
    bool failed_over = false;
    // A failback giveback batch is on the wire: P-VOL writes are recorded
    // so stale giveback blocks do not overwrite newer data.
    bool giveback_in_flight = false;
    // Apply-side: ack_time of the newest applied record.
    SimTime last_applied_ack_time = 0;
    // Host-ack time of the oldest write living only in dirty bitmaps
    // (suspension backlog, failed-over divergence); -1 when none. The
    // group's RPO is the age of the older of this and the primary
    // journal's front record.
    SimTime oldest_unsynced_time = -1;

    // --- Failure detection / auto-resync state ---
    // Bumped when the journal's sequence space restarts (failback resets
    // the journals); pending ack deadlines from the old space are stale.
    uint64_t ship_epoch = 0;
    // Bumped whenever a resync attempt is superseded (new suspension,
    // failover); a resync delivery from an older epoch is ignored.
    uint64_t resync_epoch = 0;
    // The extents of the resync batch currently on the wire; restored into
    // the dirty bitmaps if the batch is declared lost.
    std::shared_ptr<std::vector<ResyncExtent>> inflight_resync;
    // Pre-overwrite hooks guarding the view-captured extents of that
    // batch: (primary volume id, hook token).
    std::vector<std::pair<storage::VolumeId, uint64_t>> resync_cow_hooks;
    // Auto-resync backoff bookkeeping.
    SimDuration resync_backoff = 0;
    sim::EventId resync_retry_event{};
    bool resync_retry_pending = false;
    // Counters surfaced in GroupStats.
    uint64_t ack_timeouts = 0;
    uint64_t resync_timeouts = 0;
    uint64_t auto_resync_attempts = 0;

    // --- Transfer-pipeline state ---
    // Current batch size; starts at config.transfer_batch_bytes and moves
    // within [min, max] under adaptive batching.
    uint64_t batch_bytes_now = 0;
    uint64_t records_folded = 0;
    uint64_t folded_bytes_saved = 0;
    uint64_t resync_extents = 0;
    uint64_t resync_blocks = 0;
    // --- Wire-format accounting ---
    uint64_t wire_bytes_shipped = 0;
    uint64_t logical_bytes_shipped = 0;
    uint64_t checksum_rejects = 0;
    // Sliding window of the newest shipped batches' (wire, logical)
    // sizes, with running sums, for the windowed compression ratio.
    std::deque<std::pair<uint64_t, uint64_t>> recent_batches;
    uint64_t window_wire_bytes = 0;
    uint64_t window_logical_bytes = 0;
  };

  // Write-path handlers, called by the interceptors.
  void OnAsyncHostWrite(Pair* pair, storage::Volume* volume,
                        uint64_t lba, uint32_t count, std::string_view data,
                        storage::WriteInterceptor::AckFn ack);
  void OnSyncHostWrite(Pair* pair, storage::Volume* volume, uint64_t lba,
                       uint32_t count, std::string_view data,
                       storage::WriteInterceptor::AckFn ack);

  // Transfer engine: ships one batch (capped at `max_bytes`, though the
  // journal's one-record progress guarantee may overshoot) from the
  // group's primary journal. The outcome feeds the scheduler's DRR and
  // re-arm decisions; the legacy timer path ignores it.
  PumpOutcome PumpGroup(Group* group, uint64_t max_bytes = UINT64_MAX);
  // Scheduler glue: arm edges and the slow-heartbeat rescue scan.
  void OnPrimaryJournalAppend(GroupId id);
  void OnLinkReady();
  uint64_t HeartbeatScan();
  // Arms `id` if the group exists, is healthy and has unshipped backlog
  // (or demands a keep-alive tick). No-op in legacy mode.
  void ArmIfPending(GroupId id);
  // Applies contiguous received records to the S-VOLs.
  void ApplyPending(Group* group);
  // Applies one atomic batch [first, last] from the secondary journal to
  // the S-VOLs: grouped by volume and sorted by LBA when safe, in
  // sequence order otherwise.
  void ApplyBatch(Group* group, journal::SequenceNumber first,
                  journal::SequenceNumber last);
  // Adjusts group->batch_bytes_now from journal backlog and link backlog.
  void AdaptBatchSize(Group* group, journal::JournalVolume* jnl);
  // Sends the applied watermark back to trim the primary journal.
  void SendApplyAck(Group* group, journal::SequenceNumber seq);
  // Backup-side rejection of a corrupt wire frame: tells the primary to
  // treat the batch as lost (suspend + auto-resync reships the data).
  void SendWireNack(Group* group);
  // Fault-injection gate on the delivery path: flips one random bit of
  // `frame` with wire_corrupt_probability_.
  void MaybeCorruptFrame(std::string* frame);

  void StartInitialCopy(Pair* pair, Group* group);
  void MarkGroupSuspended(Group* group);
  // Copy-on-write protection for a resync batch on the wire: registers
  // (removes) pre-overwrite hooks that materialize view-captured extents
  // just before the host overwrites the captured range.
  void ProtectInflightResync(Group* group);
  void UnprotectInflightResync(Group* group);

  // Failure detection: schedules a check that the batch ending at `expect`
  // is acked within ack_timeout of its latest possible arrival.
  void ArmAckDeadline(Group* group, journal::SequenceNumber expect);
  // Schedules a check that the resync batch of `resync_id` landed.
  void ArmResyncDeadline(Group* group, uint64_t resync_id);
  // Suspends the group for `reason` and kicks off auto-resync.
  void SuspendOnFailure(Group* group, SuspendReason reason);
  // Arms (or re-arms, doubling the backoff) the auto-resync retry timer.
  void ScheduleResyncRetry(Group* group, bool reset_backoff);
  void CancelResyncRetry(Group* group);
  void TryAutoResync(GroupId id);

  // Folds the age of the primary journal's oldest unacked record with the
  // group's dirty-bitmap backlog into the RPO reported by GroupStats.
  SimDuration ComputeGroupRpo(const Group* group) const;
  // Pulls `time` (an unsynced write's host-ack instant) into the group's
  // oldest-unsynced bound.
  static void NoteUnsynced(Group* group, SimTime time) {
    if (group->oldest_unsynced_time < 0 || time < group->oldest_unsynced_time) {
      group->oldest_unsynced_time = time;
    }
  }
  // Registers the group's two journals with the attached registry.
  void InstrumentGroupJournals(Group* group);

  Group* FindGroup(GroupId id);
  const Group* FindGroup(GroupId id) const;
  Pair* FindPair(PairId id);

  sim::SimEnvironment* env_;
  storage::StorageArray* primary_;
  storage::StorageArray* secondary_;
  sim::NetworkLink* to_secondary_;
  sim::NetworkLink* to_primary_;
  EngineOptions options_;
  // Event-driven transfer scheduler; null in legacy per-group-timer mode.
  std::unique_ptr<GroupScheduler> scheduler_;
  // Background integrity scrubber; null until EnableScrubbing.
  std::unique_ptr<Scrubber> scrubber_;
  // Parallel-section pool (see EngineOptions::compute_threads); null when
  // the resolved lane count is 1, making every call site's pool argument
  // nullptr and the whole data path provably inline.
  std::unique_ptr<exec::ThreadPool> compute_pool_;

  std::map<GroupId, std::unique_ptr<Group>> groups_;
  GroupId next_group_id_ = 1;
  std::map<PairId, std::unique_ptr<Pair>> pairs_;
  PairId next_pair_id_ = 1;

  // Interceptors owned by the engine, one per protected P-VOL / S-VOL.
  std::unordered_map<storage::VolumeId,
                     std::unique_ptr<storage::WriteInterceptor>>
      primary_interceptors_;
  std::unordered_map<storage::VolumeId,
                     std::unique_ptr<storage::WriteInterceptor>>
      secondary_guards_;

  uint64_t records_shipped_ = 0;
  uint64_t records_applied_ = 0;

  // Fault-injection state (see SetFaultOptions). The corruption Rng is
  // seeded once at construction; its stream continues across option
  // changes so fault drills replay bit-identically.
  FaultOptions fault_options_;
  uint64_t wire_frames_corrupted_ = 0;
  Rng wire_corrupt_rng_{0xc0dec0de};

  // --- Observability (null when detached; hooks are pointer checks) ---
  obs::MetricRegistry* registry_ = nullptr;
  obs::TraceRing* trace_ = nullptr;
  struct EngineInstruments {
    obs::Counter* batches_shipped = nullptr;
    obs::Counter* records_shipped = nullptr;
    obs::Counter* wire_bytes_shipped = nullptr;
    obs::Counter* logical_bytes_shipped = nullptr;
    obs::Counter* batches_acked = nullptr;
    obs::Counter* batches_nacked = nullptr;
    obs::Counter* apply_batches = nullptr;
    obs::Counter* records_applied = nullptr;
    obs::Counter* suspends = nullptr;
    obs::Counter* resyncs = nullptr;
    obs::Counter* failovers = nullptr;
    obs::Counter* failbacks = nullptr;
    Histogram* batch_wire_bytes = nullptr;
    Histogram* batch_records = nullptr;
    // Compute-pool health ("exec.*"). These describe HOST-side execution
    // (scheduling, stealing), not simulated behavior: they vary run to
    // run and with the lane count, so determinism comparisons must
    // exclude the exec.* prefix. Updated by SyncExecStats on the sim
    // thread after join barriers — never from workers, because the
    // registry is not thread-safe.
    obs::Counter* exec_sections = nullptr;
    obs::Counter* exec_inline_sections = nullptr;
    obs::Counter* exec_tasks = nullptr;
    obs::Counter* exec_steals = nullptr;
    obs::Gauge* exec_queue_depth_max = nullptr;
  };
  EngineInstruments ins_;
  // Last pool stats folded into the exec.* counters (delta source).
  exec::ThreadPool::Stats exec_synced_;

  // Folds the pool's stat deltas into the exec.* instruments; called on
  // the sim thread after parallel sections. No-op when detached or inline.
  void SyncExecStats();

  // Shipped batches covered by the windowed compression ratio.
  static constexpr size_t kCompressionWindowBatches = 64;

  static constexpr uint64_t kAckMessageBytes = 64;
  // Extent cap for standalone sync-pair resyncs (groups use their config).
  static constexpr uint64_t kSyncResyncMaxExtentBlocks = 256;

  // Channel scheme on the inter-site links: a consistency group's traffic
  // uses channel == its group id (one ordered stream per group — the
  // essence of the consistency-group guarantee); synchronous pairs use a
  // disjoint per-pair channel range.
  static constexpr uint64_t kSyncChannelBase = 1ull << 32;
  static uint64_t SyncChannel(PairId id) { return kSyncChannelBase + id; }

  // Scheduler pseudo-id space for the scrubber, disjoint from group ids
  // and the sync-pair channel range: the pump callback dispatches ids at
  // or above this base to the scrubber instead of a group.
  static constexpr uint64_t kScrubSchedBase = 1ull << 33;
};

}  // namespace zerobak::replication

#endif  // ZEROBAK_REPLICATION_REPLICATION_H_
