#include "container/controller.h"

#include <utility>

namespace zerobak::container {

ControllerManager::ControllerManager(sim::SimEnvironment* env,
                                     ApiServer* api)
    : env_(env), api_(api) {}

ControllerManager::~ControllerManager() {
  for (uint64_t id : watch_ids_) api_->StopWatch(id);
  if (resync_task_) resync_task_->Stop();
}

void ControllerManager::Register(std::unique_ptr<Controller> controller) {
  Controller* raw = controller.get();
  raw->Start(api_);
  for (const std::string& kind : raw->WatchedKinds()) {
    watch_ids_.push_back(
        api_->Watch(kind, [raw](const WatchEvent& event) {
          raw->DispatchReconcile(event);
        }));
  }
  controllers_.push_back(std::move(controller));
}

Controller* ControllerManager::Find(const std::string& name) {
  for (auto& c : controllers_) {
    if (c->name() == name) return c.get();
  }
  return nullptr;
}

void ControllerManager::EnableResync(SimDuration interval) {
  resync_task_ = std::make_unique<sim::PeriodicTask>(
      env_, interval, [this] { Resync(); });
  resync_task_->Start();
}

void ControllerManager::Resync() {
  for (auto& controller : controllers_) {
    for (const std::string& kind : controller->WatchedKinds()) {
      for (const Resource& r : api_->List(kind)) {
        controller->DispatchReconcile(
            WatchEvent{WatchEventType::kModified, r});
      }
    }
  }
}

}  // namespace zerobak::container
