#ifndef ZEROBAK_CONTAINER_CONTROLLER_H_
#define ZEROBAK_CONTAINER_CONTROLLER_H_

#include <memory>
#include <string>
#include <vector>

#include "container/api_server.h"
#include "sim/environment.h"

namespace zerobak::container {

// A reconciling controller in the operator pattern: it watches one or more
// kinds and drives the world toward each object's declared spec. The
// namespace operator and the storage plugins are implemented as
// controllers.
class Controller {
 public:
  virtual ~Controller() = default;

  virtual std::string name() const = 0;
  virtual std::vector<std::string> WatchedKinds() const = 0;

  // Handles one watch event (level-triggered: handlers must tolerate
  // duplicate and replayed events).
  virtual void Reconcile(const WatchEvent& event) = 0;

  // Invoked by the manager when the controller is attached to a cluster.
  virtual void Start(ApiServer* api) { api_ = api; }

  // Entry point used by the manager: counts and forwards to Reconcile().
  void DispatchReconcile(const WatchEvent& event) {
    ++reconcile_count_;
    Reconcile(event);
  }

  uint64_t reconcile_count() const { return reconcile_count_; }

 protected:
  ApiServer* api_ = nullptr;
  uint64_t reconcile_count_ = 0;
};

// Hosts controllers on one API server: sets up their watches, dispatches
// events, and optionally drives a periodic resync (replaying every watched
// object as a MODIFIED event) so controllers converge even if an event was
// mishandled — the level-triggered safety net real operators rely on.
class ControllerManager {
 public:
  ControllerManager(sim::SimEnvironment* env, ApiServer* api);
  ~ControllerManager();

  ControllerManager(const ControllerManager&) = delete;
  ControllerManager& operator=(const ControllerManager&) = delete;

  void Register(std::unique_ptr<Controller> controller);
  Controller* Find(const std::string& name);
  size_t controller_count() const { return controllers_.size(); }

  // Starts the periodic resync loop.
  void EnableResync(SimDuration interval);

 private:
  void Resync();

  sim::SimEnvironment* env_;
  ApiServer* api_;
  std::vector<std::unique_ptr<Controller>> controllers_;
  std::vector<uint64_t> watch_ids_;
  std::unique_ptr<sim::PeriodicTask> resync_task_;
};

}  // namespace zerobak::container

#endif  // ZEROBAK_CONTAINER_CONTROLLER_H_
