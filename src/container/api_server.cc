#include "container/api_server.h"

#include <utility>

#include "common/logging.h"

namespace zerobak::container {

const char* WatchEventTypeName(WatchEventType type) {
  switch (type) {
    case WatchEventType::kAdded:
      return "ADDED";
    case WatchEventType::kModified:
      return "MODIFIED";
    case WatchEventType::kDeleted:
      return "DELETED";
  }
  return "?";
}

ApiServer::ApiServer(sim::SimEnvironment* env, std::string cluster_name,
                     SimDuration watch_latency)
    : env_(env),
      cluster_name_(std::move(cluster_name)),
      watch_latency_(watch_latency) {}

StatusOr<Resource> ApiServer::Create(Resource resource) {
  if (resource.kind.empty() || resource.name.empty()) {
    return InvalidArgumentError("resource needs kind and name");
  }
  const std::string key = resource.Key();
  if (objects_.contains(key)) {
    return AlreadyExistsError(key + " already exists in cluster " +
                              cluster_name_);
  }
  resource.resource_version = next_version_++;
  resource.generation = 1;
  objects_.emplace(key, resource);
  ++writes_;
  Publish(WatchEventType::kAdded, resource);
  return resource;
}

StatusOr<Resource> ApiServer::Update(Resource resource) {
  const std::string key = resource.Key();
  auto it = objects_.find(key);
  if (it == objects_.end()) return NotFoundError(key);
  if (resource.resource_version != it->second.resource_version) {
    return AbortedError("conflict on " + key + ": stale resource version " +
                        std::to_string(resource.resource_version));
  }
  resource.generation = it->second.generation;
  if (!(resource.spec == it->second.spec)) ++resource.generation;
  resource.resource_version = next_version_++;
  it->second = resource;
  ++writes_;
  Publish(WatchEventType::kModified, resource);
  return resource;
}

StatusOr<Resource> ApiServer::UpdateStatus(Resource resource) {
  const std::string key = resource.Key();
  auto it = objects_.find(key);
  if (it == objects_.end()) return NotFoundError(key);
  if (resource.resource_version != it->second.resource_version) {
    return AbortedError("conflict on " + key + " (status): stale version");
  }
  Resource updated = it->second;  // Keep spec/labels/annotations.
  updated.status = resource.status;
  updated.resource_version = next_version_++;
  it->second = updated;
  ++writes_;
  Publish(WatchEventType::kModified, updated);
  return updated;
}

StatusOr<Resource> ApiServer::Get(const std::string& kind,
                                  const std::string& ns,
                                  const std::string& name) const {
  auto it = objects_.find(Resource::MakeKey(kind, ns, name));
  if (it == objects_.end()) {
    return NotFoundError(Resource::MakeKey(kind, ns, name) +
                         " not found in cluster " + cluster_name_);
  }
  return it->second;
}

bool ApiServer::Exists(const std::string& kind, const std::string& ns,
                       const std::string& name) const {
  return objects_.contains(Resource::MakeKey(kind, ns, name));
}

std::vector<Resource> ApiServer::List(const std::string& kind,
                                      const std::string& ns) const {
  std::vector<Resource> out;
  // Keys are "kind/ns/name", so a prefix scan over the ordered map finds
  // all objects of a kind.
  const std::string prefix = kind + "/";
  for (auto it = objects_.lower_bound(prefix);
       it != objects_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    if (!ns.empty() && it->second.ns != ns) continue;
    out.push_back(it->second);
  }
  return out;
}

std::vector<Resource> ApiServer::ListWithLabel(const std::string& kind,
                                               const std::string& key,
                                               const std::string& value) const {
  std::vector<Resource> out;
  for (const Resource& r : List(kind)) {
    auto it = r.labels.find(key);
    if (it != r.labels.end() && it->second == value) out.push_back(r);
  }
  return out;
}

Status ApiServer::Delete(const std::string& kind, const std::string& ns,
                         const std::string& name) {
  auto it = objects_.find(Resource::MakeKey(kind, ns, name));
  if (it == objects_.end()) {
    return NotFoundError(Resource::MakeKey(kind, ns, name));
  }
  Resource removed = it->second;
  objects_.erase(it);
  ++writes_;
  Publish(WatchEventType::kDeleted, removed);
  return OkStatus();
}

uint64_t ApiServer::Watch(const std::string& kind, WatchHandler handler) {
  const uint64_t id = next_watch_id_++;
  watches_.emplace(id, WatchRegistration{kind, std::move(handler), true});
  // Informer semantics: replay existing objects as ADDED events.
  for (const Resource& r : List(kind)) {
    env_->Schedule(watch_latency_, [this, id, r] {
      auto it = watches_.find(id);
      if (it == watches_.end() || !it->second.active) return;
      ++events_delivered_;
      it->second.handler(WatchEvent{WatchEventType::kAdded, r});
    });
  }
  return id;
}

void ApiServer::StopWatch(uint64_t watch_id) {
  auto it = watches_.find(watch_id);
  if (it != watches_.end()) it->second.active = false;
}

Status ApiServer::Mutate(const std::string& kind, const std::string& ns,
                         const std::string& name,
                         const std::function<void(Resource*)>& mutator) {
  for (int attempt = 0; attempt < 5; ++attempt) {
    auto current = Get(kind, ns, name);
    if (!current.ok()) return current.status();
    Resource r = std::move(current).value();
    mutator(&r);
    auto updated = Update(std::move(r));
    if (updated.ok()) return OkStatus();
    if (updated.status().code() != StatusCode::kAborted) {
      return updated.status();
    }
  }
  return AbortedError("Mutate: persistent conflict on " +
                      Resource::MakeKey(kind, ns, name));
}

void ApiServer::Publish(WatchEventType type, const Resource& resource) {
  for (auto& [id, reg] : watches_) {
    if (!reg.active || reg.kind != resource.kind) continue;
    const uint64_t watch_id = id;
    env_->Schedule(watch_latency_, [this, watch_id, type, resource] {
      auto it = watches_.find(watch_id);
      if (it == watches_.end() || !it->second.active) return;
      ++events_delivered_;
      it->second.handler(WatchEvent{type, resource});
    });
  }
}

}  // namespace zerobak::container
