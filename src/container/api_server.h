#ifndef ZEROBAK_CONTAINER_API_SERVER_H_
#define ZEROBAK_CONTAINER_API_SERVER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "container/resource.h"
#include "sim/environment.h"

namespace zerobak::container {

enum class WatchEventType { kAdded, kModified, kDeleted };

const char* WatchEventTypeName(WatchEventType type);

struct WatchEvent {
  WatchEventType type = WatchEventType::kAdded;
  Resource resource;
};

using WatchHandler = std::function<void(const WatchEvent&)>;

// The container platform's API server: a versioned object store with
// watch streams, standing in for the OpenShift/Kubernetes control plane.
// Watch events are delivered asynchronously through the simulation
// environment (with a small propagation delay), so controllers observe
// the same eventually-consistent behaviour as real operators do.
class ApiServer {
 public:
  ApiServer(sim::SimEnvironment* env, std::string cluster_name,
            SimDuration watch_latency = Microseconds(500));

  ApiServer(const ApiServer&) = delete;
  ApiServer& operator=(const ApiServer&) = delete;

  const std::string& cluster_name() const { return cluster_name_; }
  sim::SimEnvironment* env() { return env_; }

  // --- CRUD ----------------------------------------------------------------
  // Creates the object; fails with ALREADY_EXISTS on a key collision.
  StatusOr<Resource> Create(Resource resource);

  // Full update with optimistic concurrency: `resource.resource_version`
  // must match the stored version, otherwise ABORTED (conflict). Bumps the
  // generation when the spec changed.
  StatusOr<Resource> Update(Resource resource);

  // Status-only update (spec/labels/annotations of the stored object are
  // kept); same concurrency rule.
  StatusOr<Resource> UpdateStatus(Resource resource);

  StatusOr<Resource> Get(const std::string& kind, const std::string& ns,
                         const std::string& name) const;
  bool Exists(const std::string& kind, const std::string& ns,
              const std::string& name) const;

  // Lists objects of a kind; `ns` empty lists across all namespaces.
  std::vector<Resource> List(const std::string& kind,
                             const std::string& ns = "") const;
  std::vector<Resource> ListWithLabel(const std::string& kind,
                                      const std::string& key,
                                      const std::string& value) const;

  Status Delete(const std::string& kind, const std::string& ns,
                const std::string& name);

  // --- Watches ---------------------------------------------------------------
  // Registers a handler for all events on `kind`. Returns a watch id.
  // On registration, synthetic kAdded events for existing objects are
  // delivered (informer-style initial list).
  uint64_t Watch(const std::string& kind, WatchHandler handler);
  void StopWatch(uint64_t watch_id);

  // --- Convenience ----------------------------------------------------------
  // Read-modify-write helper that retries on conflict (up to 5 times).
  Status Mutate(const std::string& kind, const std::string& ns,
                const std::string& name,
                const std::function<void(Resource*)>& mutator);

  uint64_t writes() const { return writes_; }
  uint64_t events_delivered() const { return events_delivered_; }

 private:
  void Publish(WatchEventType type, const Resource& resource);

  sim::SimEnvironment* env_;
  std::string cluster_name_;
  SimDuration watch_latency_;

  std::map<std::string, Resource> objects_;  // by Key().
  uint64_t next_version_ = 1;

  struct WatchRegistration {
    std::string kind;
    WatchHandler handler;
    bool active = true;
  };
  std::map<uint64_t, WatchRegistration> watches_;
  uint64_t next_watch_id_ = 1;

  uint64_t writes_ = 0;
  uint64_t events_delivered_ = 0;
};

}  // namespace zerobak::container

#endif  // ZEROBAK_CONTAINER_API_SERVER_H_
