#ifndef ZEROBAK_CONTAINER_RESOURCE_H_
#define ZEROBAK_CONTAINER_RESOURCE_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/value.h"

namespace zerobak::container {

// Well-known resource kinds used by the demonstration system. Custom
// resources (the CRs created by the namespace operator and consumed by the
// storage plugins) are plain kinds too — the API machinery is untyped,
// like Kubernetes' unstructured objects.
inline constexpr char kKindNamespace[] = "Namespace";
inline constexpr char kKindPod[] = "Pod";
inline constexpr char kKindPersistentVolumeClaim[] = "PersistentVolumeClaim";
inline constexpr char kKindPersistentVolume[] = "PersistentVolume";
inline constexpr char kKindStorageClass[] = "StorageClass";
// Custom resource of the replication plugin: one consistency-grouped ADC
// configuration covering a set of PVCs (Section III-B-2).
inline constexpr char kKindVolumeReplicationGroup[] = "VolumeReplicationGroup";
// Custom resources of the snapshot plugin (Section II, CSI snapshot group).
inline constexpr char kKindVolumeSnapshot[] = "VolumeSnapshot";
inline constexpr char kKindVolumeSnapshotGroup[] = "VolumeSnapshotGroup";
// Recurring snapshot-group policy with retention (protection schedule).
inline constexpr char kKindSnapshotSchedule[] = "SnapshotSchedule";

// An API object: kind + metadata + spec + status. Namespace-scoped unless
// `ns` is empty (cluster-scoped kinds: Namespace, PersistentVolume,
// StorageClass).
struct Resource {
  std::string kind;
  std::string ns;
  std::string name;

  // Monotonic per-API-server version, set on every write (optimistic
  // concurrency: updates must carry the current version).
  uint64_t resource_version = 0;
  // Bumped when the spec changes (not on status-only updates).
  uint64_t generation = 0;

  std::map<std::string, std::string> labels;
  std::map<std::string, std::string> annotations;

  Value spec;
  Value status;

  // "kind/ns/name" — unique identity within one API server.
  std::string Key() const { return MakeKey(kind, ns, name); }
  static std::string MakeKey(const std::string& kind, const std::string& ns,
                             const std::string& name) {
    return kind + "/" + ns + "/" + name;
  }

  // Convenience accessors tolerant of missing fields.
  std::string GetAnnotation(const std::string& key,
                            const std::string& fallback = "") const {
    auto it = annotations.find(key);
    return it == annotations.end() ? fallback : it->second;
  }
  std::string GetLabel(const std::string& key,
                       const std::string& fallback = "") const {
    auto it = labels.find(key);
    return it == labels.end() ? fallback : it->second;
  }
  std::string StatusPhase() const { return status.GetString("phase"); }
};

}  // namespace zerobak::container

#endif  // ZEROBAK_CONTAINER_RESOURCE_H_
