#ifndef ZEROBAK_CONTAINER_CLUSTER_H_
#define ZEROBAK_CONTAINER_CLUSTER_H_

#include <string>

#include "container/api_server.h"
#include "container/controller.h"
#include "sim/environment.h"

namespace zerobak::container {

// One container platform (an OpenShift cluster in the demonstration):
// an API server plus its controller manager.
class Cluster {
 public:
  Cluster(sim::SimEnvironment* env, std::string name)
      : api_(env, name), controllers_(env, &api_) {}

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  const std::string& name() const { return api_.cluster_name(); }
  ApiServer* api() { return &api_; }
  ControllerManager* controllers() { return &controllers_; }

 private:
  ApiServer api_;
  ControllerManager controllers_;
};

}  // namespace zerobak::container

#endif  // ZEROBAK_CONTAINER_CLUSTER_H_
