#include "workload/analytics.h"

#include <algorithm>
#include <map>

#include "common/value.h"
#include "workload/ecommerce.h"

namespace zerobak::workload {

SalesSummary SummarizeSales(db::MiniDb* sales_db) {
  SalesSummary summary;
  for (const auto& [key, json] : sales_db->Scan(kOrderTable)) {
    auto row = Value::FromJson(json);
    if (!row.ok()) continue;
    ++summary.order_count;
    summary.revenue_cents += row->GetInt("amountCents");
  }
  if (summary.order_count > 0) {
    summary.average_order_cents =
        static_cast<double>(summary.revenue_cents) /
        static_cast<double>(summary.order_count);
  }
  return summary;
}

std::vector<ItemSales> TopItems(db::MiniDb* sales_db, size_t k) {
  std::map<std::string, ItemSales> by_item;
  for (const auto& [key, json] : sales_db->Scan(kOrderTable)) {
    auto row = Value::FromJson(json);
    if (!row.ok()) continue;
    const std::string item = row->GetString("item");
    ItemSales& entry = by_item[item];
    entry.item = item;
    ++entry.orders;
    entry.quantity += row->GetInt("quantity");
  }
  std::vector<ItemSales> out;
  out.reserve(by_item.size());
  for (auto& [item, entry] : by_item) out.push_back(std::move(entry));
  std::sort(out.begin(), out.end(),
            [](const ItemSales& a, const ItemSales& b) {
              if (a.orders != b.orders) return a.orders > b.orders;
              return a.item < b.item;
            });
  if (out.size() > k) out.resize(k);
  return out;
}

StockSummary SummarizeStock(db::MiniDb* stock_db) {
  StockSummary summary;
  for (const auto& [item, json] : stock_db->Scan(kStockTable)) {
    auto row = Value::FromJson(json);
    if (!row.ok()) continue;
    ++summary.item_count;
    summary.total_quantity += row->GetInt("quantity");
    summary.total_sold +=
        row->GetInt("initialQuantity") - row->GetInt("quantity");
  }
  return summary;
}

}  // namespace zerobak::workload
