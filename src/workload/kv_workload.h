#ifndef ZEROBAK_WORKLOAD_KV_WORKLOAD_H_
#define ZEROBAK_WORKLOAD_KV_WORKLOAD_H_

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "db/minidb.h"

namespace zerobak::workload {

// YCSB-style key-value workload over a MiniDb: a load phase that inserts
// `record_count` rows, then an operation mix of reads/updates/inserts/
// scans with uniform or Zipf key popularity. Used to exercise the
// database (and, when the database sits on a replicated volume, the
// backup pipeline) with a tunable, industry-standard access pattern —
// complementary to the structured e-commerce workload.
struct KvWorkloadConfig {
  uint64_t record_count = 1000;
  uint32_t value_bytes = 100;
  // Operation mix; must sum to 1.0.
  double read_fraction = 0.5;
  double update_fraction = 0.45;
  double insert_fraction = 0.05;
  // Key popularity: 0 = uniform, otherwise Zipf theta in (0, 1).
  double zipf_theta = 0.0;
  std::string table = "usertable";
  uint64_t seed = 2024;
};

struct KvWorkloadStats {
  uint64_t reads = 0;
  uint64_t read_misses = 0;
  uint64_t updates = 0;
  uint64_t inserts = 0;
  uint64_t operations() const { return reads + updates + inserts; }
};

class KvWorkload {
 public:
  KvWorkload(db::MiniDb* database, KvWorkloadConfig config = {});

  // Inserts the initial `record_count` rows (batched commits).
  Status Load();

  // Runs `n` operations of the configured mix.
  Status Run(uint64_t n);

  const KvWorkloadStats& stats() const { return stats_; }
  // Keys inserted so far (load + run-phase inserts).
  uint64_t key_count() const { return next_key_; }

  static std::string Key(uint64_t k);

 private:
  std::string MakeValue();
  uint64_t PickExistingKey();

  db::MiniDb* database_;
  KvWorkloadConfig config_;
  Rng rng_;
  uint64_t next_key_ = 0;
  KvWorkloadStats stats_;
};

}  // namespace zerobak::workload

#endif  // ZEROBAK_WORKLOAD_KV_WORKLOAD_H_
