#ifndef ZEROBAK_WORKLOAD_INVARIANTS_H_
#define ZEROBAK_WORKLOAD_INVARIANTS_H_

#include <cstdint>
#include <string>

#include "db/minidb.h"

namespace zerobak::workload {

// Business-level consistency report over a (sales, stock) database pair —
// typically one recovered from a backup image. It operationalizes the
// paper's notion of "collapsed" backup data: "some transaction data are
// included in the inventory backup data but not in the payment backup
// data, and vice versa" (Section I).
struct CollapseReport {
  uint64_t sales_orders = 0;
  uint64_t stock_movements = 0;

  // Orders present in the sales DB whose stock movement is missing. The
  // application commits the movement strictly before the order, so with
  // order-preserving backup this MUST be zero; any positive count means
  // the backup collapsed.
  uint64_t orphan_orders = 0;

  // Movements without a matching order. These are legitimate in-flight
  // transactions (movement committed, order not yet) and are bounded by
  // the application's concurrency — not a consistency violation.
  uint64_t pending_movements = 0;

  // Items whose quantity does not equal initialQuantity minus the sum of
  // their movements (internal stock-DB accounting check).
  uint64_t stock_accounting_errors = 0;

  // Three-resource variant: payment records seen, and orders whose
  // payment is missing (payments commit strictly before orders, so a
  // missing payment is a collapse too).
  uint64_t payments = 0;
  uint64_t orders_without_payment = 0;

  bool collapsed() const {
    return orphan_orders > 0 || orders_without_payment > 0;
  }
  bool internally_consistent() const {
    return stock_accounting_errors == 0;
  }

  std::string ToString() const;
};

// Scans both databases and cross-checks every order against the stock
// movements (and the per-item quantity accounting).
CollapseReport CheckConsistency(db::MiniDb* sales_db, db::MiniDb* stock_db);

// Three-resource variant: additionally demands a payment record for
// every order (pass nullptr to skip the payment check).
CollapseReport CheckConsistency(db::MiniDb* sales_db, db::MiniDb* stock_db,
                                db::MiniDb* payments_db);

}  // namespace zerobak::workload

#endif  // ZEROBAK_WORKLOAD_INVARIANTS_H_
