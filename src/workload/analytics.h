#ifndef ZEROBAK_WORKLOAD_ANALYTICS_H_
#define ZEROBAK_WORKLOAD_ANALYTICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "db/minidb.h"

namespace zerobak::workload {

// The data-analytics application of the demonstration's third step
// (Fig. 6): read-only aggregate queries that run against databases opened
// on backup-site snapshot volumes, while replication keeps flowing.
struct SalesSummary {
  uint64_t order_count = 0;
  int64_t revenue_cents = 0;
  double average_order_cents = 0;
};

struct ItemSales {
  std::string item;
  uint64_t orders = 0;
  int64_t quantity = 0;
};

struct StockSummary {
  uint64_t item_count = 0;
  int64_t total_quantity = 0;
  int64_t total_sold = 0;  // Sum of initialQuantity - quantity.
};

// Aggregates the sales database (full scan of the order table).
SalesSummary SummarizeSales(db::MiniDb* sales_db);

// Top-k items by order count across the sales database.
std::vector<ItemSales> TopItems(db::MiniDb* sales_db, size_t k);

// Aggregates the stock database.
StockSummary SummarizeStock(db::MiniDb* stock_db);

}  // namespace zerobak::workload

#endif  // ZEROBAK_WORKLOAD_ANALYTICS_H_
