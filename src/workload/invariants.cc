#include "workload/invariants.h"

#include <cstdio>
#include <map>

#include "common/value.h"
#include "workload/ecommerce.h"

namespace zerobak::workload {

std::string CollapseReport::ToString() const {
  std::string payment_part;
  if (payments > 0 || orders_without_payment > 0) {
    payment_part = " payments=" + std::to_string(payments) +
                   " unpaid_orders=" +
                   std::to_string(orders_without_payment);
  }
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "orders=%llu movements=%llu orphan_orders=%llu "
                "pending_movements=%llu stock_errors=%llu%s (%s)",
                static_cast<unsigned long long>(sales_orders),
                static_cast<unsigned long long>(stock_movements),
                static_cast<unsigned long long>(orphan_orders),
                static_cast<unsigned long long>(pending_movements),
                static_cast<unsigned long long>(stock_accounting_errors),
                payment_part.c_str(),
                collapsed() ? "COLLAPSED" : "consistent");
  return buf;
}

CollapseReport CheckConsistency(db::MiniDb* sales_db,
                                db::MiniDb* stock_db) {
  return CheckConsistency(sales_db, stock_db, /*payments_db=*/nullptr);
}

CollapseReport CheckConsistency(db::MiniDb* sales_db, db::MiniDb* stock_db,
                                db::MiniDb* payments_db) {
  CollapseReport report;

  const auto& orders = sales_db->Scan(kOrderTable);
  const auto& movements = stock_db->Scan(kMovementTable);
  report.sales_orders = orders.size();
  report.stock_movements = movements.size();

  // Index movements by order id and accumulate per-item decrements.
  std::map<int64_t, const std::string*> by_order;
  std::map<std::string, int64_t> decremented;
  for (const auto& [key, json] : movements) {
    auto row = Value::FromJson(json);
    if (!row.ok()) continue;
    by_order[row->GetInt("orderId")] = &key;
    decremented[row->GetString("item")] += row->GetInt("quantity");
  }

  // Payment index, for the three-resource variant.
  std::map<uint64_t, bool> paid;
  if (payments_db != nullptr) {
    for (const auto& [key, json] : payments_db->Scan(kPaymentTable)) {
      auto row = Value::FromJson(json);
      if (!row.ok()) continue;
      ++report.payments;
      paid[static_cast<uint64_t>(row->GetInt("orderId"))] = true;
    }
  }

  // Every order must have its movement (the collapse check) and, when a
  // payments database participates, its payment.
  for (const auto& [key, json] : orders) {
    auto row = Value::FromJson(json);
    if (!row.ok()) {
      ++report.orphan_orders;
      continue;
    }
    // The order id is encoded in the key: "order-%012llu".
    const uint64_t order_id =
        std::strtoull(key.c_str() + 6, nullptr, 10);
    if (!by_order.contains(static_cast<int64_t>(order_id))) {
      ++report.orphan_orders;
    }
    if (payments_db != nullptr && !paid.contains(order_id)) {
      ++report.orders_without_payment;
    }
  }
  const uint64_t matched_orders =
      report.sales_orders - report.orphan_orders;
  if (report.stock_movements > matched_orders) {
    report.pending_movements = report.stock_movements - matched_orders;
  }

  // Internal stock accounting: quantity == initialQuantity - decrements.
  for (const auto& [item, json] : stock_db->Scan(kStockTable)) {
    auto row = Value::FromJson(json);
    if (!row.ok()) {
      ++report.stock_accounting_errors;
      continue;
    }
    const int64_t expected =
        row->GetInt("initialQuantity") - decremented[item];
    if (row->GetInt("quantity") != expected) {
      ++report.stock_accounting_errors;
    }
  }
  return report;
}

}  // namespace zerobak::workload
