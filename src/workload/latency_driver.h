#ifndef ZEROBAK_WORKLOAD_LATENCY_DRIVER_H_
#define ZEROBAK_WORKLOAD_LATENCY_DRIVER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/rng.h"
#include "common/time.h"
#include "sim/environment.h"
#include "storage/array.h"

namespace zerobak::workload {

// Timing-accurate transaction driver for the slowdown experiments (E1,
// E5). Each simulated client runs a closed loop of business transactions;
// a transaction is a chain of dependent host writes (WAL append to the
// stock volume, then to the sales volume — the same IO pattern the
// e-commerce application produces), issued through the array's
// asynchronous front end so that every latency contribution (media,
// journal, SDC round trip) lands in the measurement.
struct TxnIoStep {
  storage::VolumeId volume = 0;
  uint32_t blocks = 1;
  // False: host write (the default). True: host read (e.g. an index
  // lookup preceding the WAL append).
  bool read = false;
};

struct DriverConfig {
  // Dependent write chain executed per transaction, in order.
  std::vector<TxnIoStep> steps;
  int clients = 4;
  // Optional pause between a client's transactions (0 = saturating).
  SimDuration think_time = 0;
  uint64_t seed = 77;
};

class ClosedLoopDriver {
 public:
  ClosedLoopDriver(sim::SimEnvironment* env, storage::StorageArray* array,
                   DriverConfig config);

  // Launches all clients. Transactions flow until Stop().
  void Start();
  // Stops issuing new transactions (in-flight ones complete).
  void Stop();

  uint64_t completed_txns() const { return completed_; }
  uint64_t failed_txns() const { return failed_; }
  // End-to-end transaction latency (ns).
  const Histogram& txn_latency() const { return latency_; }
  // Throughput over the driven interval.
  double TxnPerSecond() const;

 private:
  void StartTxn(int client);
  void RunStep(int client, size_t step_index, SimTime txn_start);
  std::string MakePayload(uint32_t blocks, uint32_t block_size);

  sim::SimEnvironment* env_;
  storage::StorageArray* array_;
  DriverConfig config_;
  Rng rng_;
  bool running_ = false;
  SimTime started_at_ = 0;
  SimTime stopped_at_ = 0;
  uint64_t completed_ = 0;
  uint64_t failed_ = 0;
  Histogram latency_;
};

}  // namespace zerobak::workload

#endif  // ZEROBAK_WORKLOAD_LATENCY_DRIVER_H_
