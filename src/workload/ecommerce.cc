#include "workload/ecommerce.h"

#include <utility>

#include "common/value.h"

namespace zerobak::workload {

std::string ItemKey(uint32_t item) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "item-%06u", item);
  return buf;
}

std::string OrderKey(uint64_t order_id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "order-%012llu",
                static_cast<unsigned long long>(order_id));
  return buf;
}

std::string MovementKey(uint64_t order_id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "mv-%012llu",
                static_cast<unsigned long long>(order_id));
  return buf;
}

std::string PaymentKey(uint64_t order_id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "pay-%012llu",
                static_cast<unsigned long long>(order_id));
  return buf;
}

EcommerceApp::EcommerceApp(db::MiniDb* sales_db, db::MiniDb* stock_db,
                           EcommerceConfig config)
    : sales_db_(sales_db),
      stock_db_(stock_db),
      config_(config),
      rng_(config.seed) {}

EcommerceApp::EcommerceApp(db::MiniDb* sales_db, db::MiniDb* stock_db,
                           db::MiniDb* payments_db, EcommerceConfig config)
    : sales_db_(sales_db),
      stock_db_(stock_db),
      payments_db_(payments_db),
      config_(config),
      rng_(config.seed) {}

Status EcommerceApp::InitializeCatalog() {
  db::Transaction txn = stock_db_->Begin();
  for (uint32_t i = 0; i < config_.num_items; ++i) {
    const std::string key = ItemKey(i);
    if (stock_db_->Exists(kStockTable, key)) continue;
    Value row = Value::MakeObject();
    row["quantity"] = config_.initial_stock_per_item;
    row["initialQuantity"] = config_.initial_stock_per_item;
    txn.Put(kStockTable, key, row.ToJson());
  }
  if (txn.empty()) return OkStatus();
  return stock_db_->Commit(std::move(txn));
}

StatusOr<OrderResult> EcommerceApp::PlaceOrder() {
  OrderResult result;
  result.order_id = next_order_id_;
  const uint32_t item_index =
      config_.zipf_theta > 0
          ? static_cast<uint32_t>(
                rng_.Zipf(config_.num_items, config_.zipf_theta))
          : static_cast<uint32_t>(rng_.Uniform(config_.num_items));
  result.item = ItemKey(item_index);
  result.quantity = rng_.UniformInt(1, 3);
  result.amount_cents = rng_.UniformInt(500, 50000);

  // Step 1: the stock database — decrement quantity, record the movement.
  ZB_ASSIGN_OR_RETURN(std::string stock_json,
                      stock_db_->Get(kStockTable, result.item));
  ZB_ASSIGN_OR_RETURN(Value stock_row, Value::FromJson(stock_json));
  const int64_t quantity = stock_row.GetInt("quantity");
  if (quantity < result.quantity) {
    return FailedPreconditionError("item " + result.item + " out of stock");
  }
  stock_row["quantity"] = quantity - result.quantity;

  Value movement = Value::MakeObject();
  movement["orderId"] = static_cast<int64_t>(result.order_id);
  movement["item"] = result.item;
  movement["quantity"] = result.quantity;

  db::Transaction stock_txn = stock_db_->Begin();
  stock_txn.Put(kStockTable, result.item, stock_row.ToJson());
  stock_txn.Put(kMovementTable, MovementKey(result.order_id),
                movement.ToJson());
  ZB_RETURN_IF_ERROR(stock_db_->Commit(std::move(stock_txn)));

  // Step 2 (three-resource variant): the payment database, only after
  // the stock commit is durable.
  if (payments_db_ != nullptr) {
    Value payment = Value::MakeObject();
    payment["orderId"] = static_cast<int64_t>(result.order_id);
    payment["amountCents"] = result.amount_cents;
    payment["method"] = rng_.Bernoulli(0.7) ? "card" : "invoice";
    db::Transaction pay_txn = payments_db_->Begin();
    pay_txn.Put(kPaymentTable, PaymentKey(result.order_id),
                payment.ToJson());
    ZB_RETURN_IF_ERROR(payments_db_->Commit(std::move(pay_txn)));
  }

  // Final step (only after every upstream commit is durable): the sales
  // database.
  Value order = Value::MakeObject();
  order["item"] = result.item;
  order["quantity"] = result.quantity;
  order["amountCents"] = result.amount_cents;

  db::Transaction sales_txn = sales_db_->Begin();
  sales_txn.Put(kOrderTable, OrderKey(result.order_id), order.ToJson());
  ZB_RETURN_IF_ERROR(sales_db_->Commit(std::move(sales_txn)));

  ++next_order_id_;
  ++orders_placed_;
  return result;
}

}  // namespace zerobak::workload
