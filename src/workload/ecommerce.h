#ifndef ZEROBAK_WORKLOAD_ECOMMERCE_H_
#define ZEROBAK_WORKLOAD_ECOMMERCE_H_

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "db/minidb.h"

namespace zerobak::workload {

// The business process of the demonstration (Section II): a transactional
// e-commerce application over two databases — a stock database and a
// sales database. Placing an order touches both:
//
//   1. stock DB:  decrement the item quantity and record a stock movement
//                 tagged with the order id   (commit, ack'd)
//   2. sales DB:  insert the order row       (commit, ack'd)
//
// Step 2 starts only after step 1's commit is acknowledged, so in the
// storage-level total order every sales order is preceded by its stock
// movement. A backup image that preserves that order can never contain an
// order without its movement; one that reorders across volumes can — that
// is the paper's "collapsed backup data" (Section I), which
// workload::CheckConsistency detects.
struct EcommerceConfig {
  uint32_t num_items = 64;
  int64_t initial_stock_per_item = 1000000;
  // Zipf skew for item popularity; 0 = uniform.
  double zipf_theta = 0.0;
  uint64_t seed = 1234;
};

struct OrderResult {
  uint64_t order_id = 0;
  std::string item;
  int64_t quantity = 0;
  int64_t amount_cents = 0;
};

// Table and key conventions shared with the checker and analytics.
inline constexpr char kStockTable[] = "stock";
inline constexpr char kMovementTable[] = "movements";
inline constexpr char kOrderTable[] = "orders";
inline constexpr char kPaymentTable[] = "payments";

std::string ItemKey(uint32_t item);
std::string OrderKey(uint64_t order_id);
std::string MovementKey(uint64_t order_id);
std::string PaymentKey(uint64_t order_id);

class EcommerceApp {
 public:
  EcommerceApp(db::MiniDb* sales_db, db::MiniDb* stock_db,
               EcommerceConfig config = {});

  // Three-resource variant (Section I names "inventory and payment
  // databases"): the order flow becomes
  //   stock commit -> payment commit -> sales commit,
  // extending the happens-before chain across THREE volumes. The collapse
  // checker then also demands a payment for every order.
  EcommerceApp(db::MiniDb* sales_db, db::MiniDb* stock_db,
               db::MiniDb* payments_db, EcommerceConfig config = {});

  // Populates the stock catalog (idempotent: existing items are kept).
  Status InitializeCatalog();

  // Executes one order transaction across both databases.
  StatusOr<OrderResult> PlaceOrder();

  uint64_t orders_placed() const { return orders_placed_; }
  const EcommerceConfig& config() const { return config_; }

  db::MiniDb* sales_db() { return sales_db_; }
  db::MiniDb* stock_db() { return stock_db_; }
  db::MiniDb* payments_db() { return payments_db_; }

 private:
  db::MiniDb* sales_db_;
  db::MiniDb* stock_db_;
  db::MiniDb* payments_db_ = nullptr;  // Optional third resource.
  EcommerceConfig config_;
  Rng rng_;
  uint64_t next_order_id_ = 1;
  uint64_t orders_placed_ = 0;
};

}  // namespace zerobak::workload

#endif  // ZEROBAK_WORKLOAD_ECOMMERCE_H_
