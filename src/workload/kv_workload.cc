#include "workload/kv_workload.h"

#include <cstdio>

#include "common/logging.h"

namespace zerobak::workload {

KvWorkload::KvWorkload(db::MiniDb* database, KvWorkloadConfig config)
    : database_(database), config_(config), rng_(config.seed) {
  ZB_CHECK(config_.read_fraction + config_.update_fraction +
               config_.insert_fraction >
           0.999)
      << "operation mix must sum to 1.0";
}

std::string KvWorkload::Key(uint64_t k) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "user%012llu",
                static_cast<unsigned long long>(k));
  return buf;
}

std::string KvWorkload::MakeValue() {
  std::string value(config_.value_bytes, '\0');
  for (auto& c : value) {
    c = static_cast<char>('a' + rng_.Uniform(26));
  }
  return value;
}

uint64_t KvWorkload::PickExistingKey() {
  if (next_key_ == 0) return 0;
  if (config_.zipf_theta > 0) {
    return rng_.Zipf(next_key_, config_.zipf_theta);
  }
  return rng_.Uniform(next_key_);
}

Status KvWorkload::Load() {
  const uint64_t kBatch = 32;
  while (next_key_ < config_.record_count) {
    db::Transaction txn = database_->Begin();
    for (uint64_t i = 0; i < kBatch && next_key_ < config_.record_count;
         ++i) {
      txn.Put(config_.table, Key(next_key_++), MakeValue());
    }
    ZB_RETURN_IF_ERROR(database_->Commit(std::move(txn)));
  }
  return OkStatus();
}

Status KvWorkload::Run(uint64_t n) {
  for (uint64_t i = 0; i < n; ++i) {
    const double dice = rng_.NextDouble();
    if (dice < config_.read_fraction) {
      ++stats_.reads;
      auto value = database_->Get(config_.table, Key(PickExistingKey()));
      if (!value.ok()) ++stats_.read_misses;
    } else if (dice < config_.read_fraction + config_.update_fraction) {
      ++stats_.updates;
      db::Transaction txn = database_->Begin();
      txn.Put(config_.table, Key(PickExistingKey()), MakeValue());
      ZB_RETURN_IF_ERROR(database_->Commit(std::move(txn)));
    } else {
      ++stats_.inserts;
      db::Transaction txn = database_->Begin();
      txn.Put(config_.table, Key(next_key_++), MakeValue());
      ZB_RETURN_IF_ERROR(database_->Commit(std::move(txn)));
    }
  }
  return OkStatus();
}

}  // namespace zerobak::workload
