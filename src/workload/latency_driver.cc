#include "workload/latency_driver.h"

#include <utility>

#include "common/logging.h"

namespace zerobak::workload {

ClosedLoopDriver::ClosedLoopDriver(sim::SimEnvironment* env,
                                   storage::StorageArray* array,
                                   DriverConfig config)
    : env_(env), array_(array), config_(std::move(config)),
      rng_(config_.seed) {
  ZB_CHECK(!config_.steps.empty()) << "driver needs at least one IO step";
}

void ClosedLoopDriver::Start() {
  if (running_) return;
  running_ = true;
  started_at_ = env_->now();
  for (int c = 0; c < config_.clients; ++c) {
    StartTxn(c);
  }
}

void ClosedLoopDriver::Stop() {
  running_ = false;
  stopped_at_ = env_->now();
}

double ClosedLoopDriver::TxnPerSecond() const {
  const SimTime end = running_ ? env_->now() : stopped_at_;
  const SimDuration span = end - started_at_;
  if (span <= 0) return 0;
  return static_cast<double>(completed_) / ToSeconds(span);
}

std::string ClosedLoopDriver::MakePayload(uint32_t blocks,
                                          uint32_t block_size) {
  // Content is irrelevant for timing; a cheap per-call varying byte keeps
  // payloads from being accidentally identical.
  std::string payload(static_cast<size_t>(blocks) * block_size,
                      static_cast<char>('a' + (completed_ % 23)));
  return payload;
}

void ClosedLoopDriver::StartTxn(int client) {
  if (!running_) return;
  RunStep(client, 0, env_->now());
}

void ClosedLoopDriver::RunStep(int client, size_t step_index,
                               SimTime txn_start) {
  const TxnIoStep& step = config_.steps[step_index];
  storage::Volume* volume = array_->GetVolume(step.volume);
  if (volume == nullptr) {
    ++failed_;
    return;
  }
  const uint64_t max_lba = volume->block_count() - step.blocks;
  const block::Lba lba = max_lba == 0 ? 0 : rng_.Uniform(max_lba);
  auto on_done = [this, client, step_index,
                  txn_start](block::IoResult result) {
        if (!result.status.ok()) {
          ++failed_;
          // The array (or its replication target) rejected the IO; the
          // client retries with a fresh transaction if still running.
          if (running_) StartTxn(client);
          return;
        }
        if (step_index + 1 < config_.steps.size()) {
          RunStep(client, step_index + 1, txn_start);
          return;
        }
        ++completed_;
        latency_.Add(static_cast<uint64_t>(env_->now() - txn_start));
        if (!running_) return;
        if (config_.think_time > 0) {
          env_->Schedule(config_.think_time,
                         [this, client] { StartTxn(client); });
        } else {
          StartTxn(client);
        }
      };
  if (step.read) {
    array_->SubmitHostRead(step.volume, lba, step.blocks,
                           std::move(on_done));
  } else {
    array_->SubmitHostWrite(step.volume, lba,
                            MakePayload(step.blocks, volume->block_size()),
                            std::move(on_done));
  }
}

}  // namespace zerobak::workload
