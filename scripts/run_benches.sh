#!/usr/bin/env bash
# Regenerates the checked-in benchmark JSON (BENCH_micro.json,
# BENCH_pipeline.json, BENCH_observe.json, BENCH_scale.json,
# BENCH_parallel.json and BENCH_scrub.json) from a Release + NDEBUG
# build, so the recorded perf trajectory is reproducible from one command:
#
#   scripts/run_benches.sh
#
# Run from anywhere; results land at the repository root.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "${repo_root}"

cmake --preset bench
cmake --build --preset bench -j "$(nproc)" \
  --target bench_micro bench_pipeline bench_observe bench_scale \
           bench_parallel bench_scrub

./build-bench/bench/bench_micro \
  --benchmark_out="${repo_root}/BENCH_micro.json" \
  --benchmark_out_format=json
./build-bench/bench/bench_pipeline --out "${repo_root}/BENCH_pipeline.json"
./build-bench/bench/bench_observe --out "${repo_root}/BENCH_observe.json"
./build-bench/bench/bench_scale --out "${repo_root}/BENCH_scale.json"
./build-bench/bench/bench_parallel --out "${repo_root}/BENCH_parallel.json"
./build-bench/bench/bench_scrub --out "${repo_root}/BENCH_scrub.json"

echo "Wrote BENCH_micro.json, BENCH_pipeline.json, BENCH_observe.json, BENCH_scale.json, BENCH_parallel.json and BENCH_scrub.json"
