#!/usr/bin/env bash
# The one-command pre-merge gate: configure, build and run the full test
# suite under both the default (RelWithDebInfo) and the ASan+UBSan
# sanitize presets, then smoke-run the measurement benches. This is what
# CI runs; a green check.sh is the bar every change must clear.
#
#   scripts/check.sh             # everything
#   scripts/check.sh --fast      # default preset only (inner-loop use)
#
# Run from anywhere.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "${repo_root}"

fast=0
for arg in "$@"; do
  case "${arg}" in
    --fast) fast=1 ;;
    *) echo "unknown argument: ${arg}" >&2; exit 2 ;;
  esac
done

jobs="$(nproc)"
presets=(default)
if [[ "${fast}" -eq 0 ]]; then
  presets+=(sanitize)
fi

for preset in "${presets[@]}"; do
  echo "=== preset: ${preset} ==="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${jobs}"
  ctest --preset "${preset}" -j "${jobs}"
done

# TSan pass over the parallel compute layer: only the tests that drive
# the thread pool and its call sites (wire chunking, parallel apply,
# resync capture, the lane-count determinism drills) — the rest of the
# suite is single-threaded simulation and would just burn TSan's ~10x
# slowdown for nothing.
if [[ "${fast}" -eq 0 ]]; then
  echo "=== preset: tsan (parallel subset) ==="
  cmake --preset tsan
  cmake --build --preset tsan -j "${jobs}" \
    --target exec_test common_test replication_test integration_test \
             bench_parallel
  ctest --preset tsan -j "${jobs}" \
    -R 'ThreadPool|Crc32cCombine|WireChunked|WireTest|ParallelSystem|ParallelEngine'
  ./build-tsan/bench/bench_parallel --quick \
    --out /tmp/zerobak_parallel_tsan_smoke.json
fi

# The bench smokes already ran once under ctest above (bench_*_smoke
# carry their own acceptance checks); re-run them standalone here so a
# bench regression prints its table instead of hiding behind a ctest
# failure line.
if [[ "${fast}" -eq 0 ]]; then
  echo "=== bench smokes ==="
  ./build/bench/bench_pipeline --quick --out /tmp/zerobak_pipeline_smoke.json
  ./build/bench/bench_observe --quick --out /tmp/zerobak_observe_smoke.json
  ./build/bench/bench_scale --quick --out /tmp/zerobak_scale_smoke.json
  ./build/bench/bench_parallel --quick --out /tmp/zerobak_parallel_smoke.json
  ./build/bench/bench_scrub --quick --out /tmp/zerobak_scrub_smoke.json
fi

echo "check.sh: all green"
