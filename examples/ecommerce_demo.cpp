// The full ICDE demonstration, scripted (Section IV, Figs. 2-6):
//
//   step 0  deploy the business process (namespace + 2 database PVCs)
//   step 1  backup configuration — tag the namespace; the namespace
//           operator configures ADC + the consistency group (Figs. 3-4)
//   step 2  snapshot development on the backup site (Fig. 5)
//   step 3  data analytics on the snapshot volumes while the business
//           and the replication keep running (Fig. 6)
//
//   ./build/examples/ecommerce_demo
#include <cstdio>

#include "common/logging.h"
#include "core/demo_system.h"
#include "db/minidb.h"
#include "storage/array_device.h"
#include "workload/analytics.h"
#include "workload/ecommerce.h"
#include "workload/invariants.h"

using namespace zerobak;

namespace {

db::DbOptions DbOpts() {
  db::DbOptions opts;
  opts.checkpoint_blocks = 256;
  opts.wal_blocks = 1024;
  return opts;
}

void Banner(const char* text) { std::printf("\n--- %s ---\n", text); }

}  // namespace

int main() {
  SetLogLevel(LogLevel::kError);
  sim::SimEnvironment env;
  core::DemoSystemConfig config;
  config.main_array.media = block::DeviceLatencyModel{0, 0, 0, 0, 1};
  config.backup_array.media = block::DeviceLatencyModel{0, 0, 0, 0, 2};
  config.link.base_latency = Milliseconds(5);
  core::DemoSystem system(&env, config);

  Banner("step 0: deploy the business process");
  ZB_CHECK(system.CreateBusinessNamespace("shop").ok());
  ZB_CHECK(system.CreatePvc("shop", "sales-db", 8 << 20).ok());
  ZB_CHECK(system.CreatePvc("shop", "stock-db", 8 << 20).ok());
  env.RunFor(Milliseconds(10));
  std::printf("PVCs bound on main site: %zu\n",
              system.main_site()
                  ->api()
                  ->List(container::kKindPersistentVolumeClaim, "shop")
                  .size());

  auto sales_vol = system.ResolveMainVolume("shop", "sales-db");
  auto stock_vol = system.ResolveMainVolume("shop", "stock-db");
  storage::ArrayVolumeDevice sales_dev(system.main_site()->array(),
                                       *sales_vol);
  storage::ArrayVolumeDevice stock_dev(system.main_site()->array(),
                                       *stock_vol);
  ZB_CHECK(db::MiniDb::Format(&sales_dev, DbOpts()).ok());
  ZB_CHECK(db::MiniDb::Format(&stock_dev, DbOpts()).ok());
  auto sales_db = std::move(db::MiniDb::Open(&sales_dev, DbOpts())).value();
  auto stock_db = std::move(db::MiniDb::Open(&stock_dev, DbOpts())).value();
  workload::EcommerceApp app(sales_db.get(), stock_db.get());
  ZB_CHECK(app.InitializeCatalog().ok());
  std::printf("catalog loaded: %zu items in the stock database\n",
              stock_db->RowCount(workload::kStockTable));

  Banner("step 1: backup configuration (the user tags the namespace)");
  std::printf("backup-site PVs before tagging: %zu (Fig. 3)\n",
              system.backup_site()
                  ->api()
                  ->List(container::kKindPersistentVolume)
                  .size());
  ZB_CHECK(system.TagNamespaceForBackup("shop").ok());
  ZB_CHECK(system.WaitForBackupConfigured("shop").ok());
  std::printf("backup-site PVs after tagging:  %zu (Fig. 4)\n",
              system.backup_site()
                  ->api()
                  ->List(container::kKindPersistentVolume)
                  .size());
  auto group = system.ReplicationGroupOf("shop");
  std::printf("consistency group %llu protects %zu volume pairs\n",
              (unsigned long long)*group,
              system.replication()->ListGroupPairs(*group).size());

  std::printf("business processing continues during replication:\n");
  for (int i = 0; i < 100; ++i) {
    ZB_CHECK(app.PlaceOrder().ok());
    env.RunFor(Microseconds(200));
  }
  env.RunFor(Milliseconds(100));
  auto stats = system.replication()->GetGroupStats(*group);
  std::printf("  100 orders placed; journal written=%llu applied=%llu\n",
              (unsigned long long)stats->written,
              (unsigned long long)stats->applied);

  Banner("step 2: snapshot development on the backup site");
  ZB_CHECK(system.CreateSnapshotGroupCr("shop", "analytics").ok());
  ZB_CHECK(system.WaitForSnapshotGroup("shop", "analytics").ok());
  std::printf("snapshot group ready; VolumeSnapshot objects: %zu (Fig. 5)\n",
              system.backup_site()
                  ->api()
                  ->List(container::kKindVolumeSnapshot, "shop")
                  .size());

  Banner("step 3: data analytics on the snapshot volumes");
  // The business keeps running while analytics reads the snapshot.
  for (int i = 0; i < 60; ++i) {
    ZB_CHECK(app.PlaceOrder().ok());
    env.RunFor(Microseconds(200));
  }
  auto sales_snap = system.ResolveSnapshot("shop", "analytics", "sales-db");
  auto stock_snap = system.ResolveSnapshot("shop", "analytics", "stock-db");
  auto snap_sales = std::move(db::MiniDb::Open(*sales_snap, DbOpts())).value();
  auto snap_stock = std::move(db::MiniDb::Open(*stock_snap, DbOpts())).value();

  auto summary = workload::SummarizeSales(snap_sales.get());
  std::printf("analytics on the frozen image (Fig. 6):\n");
  std::printf("  orders: %llu   revenue: $%.2f   avg order: $%.2f\n",
              (unsigned long long)summary.order_count,
              summary.revenue_cents / 100.0,
              summary.average_order_cents / 100.0);
  for (const auto& item : workload::TopItems(snap_sales.get(), 3)) {
    std::printf("  top item %-12s orders=%llu qty=%lld\n",
                item.item.c_str(), (unsigned long long)item.orders,
                (long long)item.quantity);
  }
  auto consistency =
      workload::CheckConsistency(snap_sales.get(), snap_stock.get());
  std::printf("cross-database consistency of the snapshot image: %s\n",
              consistency.ToString().c_str());
  std::printf("orders placed while analytics ran: %llu (business "
              "unaffected)\n",
              (unsigned long long)(app.orders_placed() - 100));
  return 0;
}
