// Disaster-recovery drill: the scenario the backup exists for.
//
// Runs the e-commerce business under consistency-group ADC, kills the
// main site mid-replication, takes over on the backup site, recovers the
// databases and verifies that the surviving state is business-consistent
// (every order has its stock movement) with bounded loss. Then repeats
// the same drill with the per-volume ADC ablation to show the "collapsed
// backup data" failure mode of Section I.
//
//   ./build/examples/disaster_recovery
#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/demo_system.h"

using namespace zerobak;
using bench::BusinessProcess;

namespace {

// Runs one drill; returns true if the recovered backup collapsed.
bool RunDrill(bool per_volume, uint64_t seed, bool verbose) {
  if (verbose) {
    std::printf("\n--- drill with %s (seed %llu) ---\n",
                per_volume ? "PER-VOLUME ADC (the paper's anti-pattern)"
                           : "CONSISTENCY-GROUP ADC (the paper's design)",
                (unsigned long long)seed);
  }
  sim::SimEnvironment env;
  core::DemoSystemConfig config = bench::FunctionalConfig();
  config.link.base_latency = Milliseconds(2);
  config.link.jitter = Milliseconds(6);
  config.link.seed = seed;
  config.nso.per_volume = per_volume;
  core::DemoSystem system(&env, config);

  BusinessProcess bp = bench::DeployBusinessProcess(&system, "shop", seed);
  ZB_CHECK(system.TagNamespaceForBackup("shop").ok());
  ZB_CHECK(system.WaitForBackupConfigured("shop").ok());

  Rng rng(seed);
  for (int i = 0; i < 150; ++i) {
    ZB_CHECK(bp.app->PlaceOrder().ok());
    env.RunFor(static_cast<SimDuration>(rng.Uniform(Microseconds(300))));
  }
  if (verbose) {
    std::printf("placed %llu orders; disaster strikes at t=%s\n",
                (unsigned long long)bp.app->orders_placed(),
                FormatDuration(env.now()).c_str());
  }

  system.FailMainSite();
  auto report = system.Failover("shop");
  ZB_CHECK(report.ok());

  bench::RecoveryOutcome outcome = bench::RecoverOnBackup(&system, "shop");
  ZB_CHECK(outcome.recovered);
  if (verbose) {
    std::printf("failover complete: %llu journal records never arrived\n",
                (unsigned long long)report->lost_records);
    std::printf("recovered %llu/%llu orders on the backup site\n",
                (unsigned long long)outcome.orders,
                (unsigned long long)bp.app->orders_placed());
    std::printf("business consistency check: %s\n",
                outcome.report.ToString().c_str());
    if (outcome.report.collapsed()) {
      std::printf(">>> the backup COLLAPSED: %llu orders have no stock "
                  "movement — unusable for recovery\n",
                  (unsigned long long)outcome.report.orphan_orders);
    } else {
      std::printf(">>> the backup is a consistent prefix of the business "
                  "history — safe to resume from\n");
    }
  }
  return outcome.report.collapsed();
}

}  // namespace

int main() {
  SetLogLevel(LogLevel::kError);
  // The consistency group survives every crash point, whatever the seed.
  RunDrill(/*per_volume=*/false, /*seed=*/1, /*verbose=*/true);

  // Per-volume ADC under identical conditions: some disasters are
  // survived by luck, but across a handful of them the backup collapses.
  int collapsed = 0;
  const int kTrials = 10;
  uint64_t first_collapsed_seed = 0;
  for (uint64_t seed = 1; seed <= kTrials; ++seed) {
    if (RunDrill(/*per_volume=*/true, seed, /*verbose=*/false)) {
      ++collapsed;
      if (first_collapsed_seed == 0) first_collapsed_seed = seed;
    }
  }
  std::printf("\nper-volume ADC: %d/%d identical drills left a COLLAPSED "
              "backup; replaying the first one in detail:\n",
              collapsed, kTrials);
  if (first_collapsed_seed != 0) {
    RunDrill(/*per_volume=*/true, first_collapsed_seed, /*verbose=*/true);
  }
  return 0;
}
