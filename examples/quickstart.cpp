// Quickstart: the zerobak library in ~80 lines.
//
// Builds two simulated storage arrays connected by a WAN link, protects a
// volume with consistency-group ADC, writes through the host path, and
// fails over to the backup site.
//
//   ./build/examples/quickstart
#include <cstdio>

#include "replication/replication.h"
#include "sim/environment.h"
#include "sim/network.h"
#include "storage/array.h"

using namespace zerobak;

int main() {
  // 1. The simulation environment: a deterministic virtual clock that
  //    every component schedules against.
  sim::SimEnvironment env;

  // 2. Two storage arrays (main and backup site) and the inter-site link.
  storage::ArrayConfig main_cfg;
  main_cfg.serial = "G370-MAIN";
  storage::ArrayConfig backup_cfg;
  backup_cfg.serial = "G370-BKUP";
  storage::StorageArray main_array(&env, main_cfg);
  storage::StorageArray backup_array(&env, backup_cfg);

  sim::NetworkLinkConfig link_cfg;
  link_cfg.base_latency = Milliseconds(5);  // One-way WAN delay.
  sim::NetworkLink to_backup(&env, link_cfg, "main->backup");
  sim::NetworkLink to_main(&env, link_cfg, "backup->main");

  // 3. The replication engine: asynchronous data copy with a consistency
  //    group (one shared journal => cross-volume write order preserved).
  replication::ReplicationEngine engine(&env, &main_array, &backup_array,
                                        &to_backup, &to_main);
  auto group = engine.CreateConsistencyGroup({.name = "quickstart-cg"});
  auto pvol = main_array.CreateVolume("business-data", /*blocks=*/1024);
  auto svol = backup_array.CreateVolume("r-business-data", 1024);
  auto pair = engine.CreatePair(
      {.name = "pair-1",
       .primary = *pvol,
       .secondary = *svol,
       .mode = replication::ReplicationMode::kAsynchronous,
       .group = *group});
  std::printf("pair created, state=%s\n",
              PairStateName(engine.GetPair(*pair)->state()));

  // 4. Host writes: acknowledged locally (no slowdown), journaled, and
  //    shipped to the backup site in the background.
  std::string block(block::kDefaultBlockSize, 'A');
  for (block::Lba lba = 0; lba < 16; ++lba) {
    Status s = main_array.WriteSync(*pvol, lba, block);
    if (!s.ok()) std::printf("write failed: %s\n", s.ToString().c_str());
  }
  auto stats = engine.GetGroupStats(*group);
  std::printf("after writes: journal written=%llu applied@backup=%llu\n",
              (unsigned long long)stats->written,
              (unsigned long long)stats->applied);

  // 5. Let the simulation run: the transfer engine drains the journal.
  env.RunFor(Milliseconds(50));
  stats = engine.GetGroupStats(*group);
  std::printf("after 50ms:   journal written=%llu applied@backup=%llu\n",
              (unsigned long long)stats->written,
              (unsigned long long)stats->applied);

  // 6. Disaster: the main site dies; take over on the backup array.
  main_array.SetFailed(true);
  to_backup.SetConnected(false);
  auto report = engine.FailoverGroup(*group);
  std::printf("failover: recovery point seq=%llu, lost records=%llu\n",
              (unsigned long long)report->recovery_point,
              (unsigned long long)report->lost_records);

  // 7. The backup volume is now writable and holds the replicated data.
  std::string out;
  Status s = backup_array.ReadSync(*svol, 0, 1, &out);
  std::printf("backup block 0 readable=%s content_ok=%s\n",
              s.ok() ? "yes" : "no", out == block ? "yes" : "no");
  s = backup_array.WriteSync(*svol, 0, std::string(4096, 'B'));
  std::printf("backup volume writable after failover: %s\n",
              s.ok() ? "yes" : "no");
  return 0;
}
