// Interactive/scripted operations console over the demonstration system —
// the equivalent of the web consoles in Fig. 2.
//
//   ./build/examples/console_demo                # replay the demo script
//   ./build/examples/console_demo -              # read commands from stdin
//   echo "help" | ./build/examples/console_demo -
#include <iostream>
#include <string>

#include "common/logging.h"
#include "core/console.h"

using namespace zerobak;

namespace {

constexpr char kDemoScript[] = R"(# ---- the ICDE demonstration, scripted ----
help
deploy shop
order shop 25
# step 1: backup configuration (Figs. 3-4)
tag shop
run 100
status shop
# step 2: snapshot development (Fig. 5)
snapshot shop analytics
# step 3: analytics on the snapshot (Fig. 6)
order shop 15
analytics shop analytics
verify shop analytics
# protection policy: snapshot every 50ms, keep 3
schedule shop nightly 50 3
run 200
verify-latest shop nightly
# disaster recovery drill
fail-main
failover shop
check shop
repair-main
failback shop
run 100
status shop
)";

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kError);
  sim::SimEnvironment env;
  core::DemoSystemConfig config;
  config.main_array.media = block::DeviceLatencyModel{0, 0, 0, 0, 1};
  config.backup_array.media = block::DeviceLatencyModel{0, 0, 0, 0, 2};
  config.link.base_latency = Milliseconds(2);
  core::DemoSystem system(&env, config);
  core::Console console(&system, &std::cout);

  if (argc > 1 && std::string(argv[1]) == "-") {
    std::string line;
    while (std::getline(std::cin, line)) {
      Status st = console.Execute(line);
      if (!st.ok()) std::cout << "error: " << st << "\n";
    }
    return 0;
  }

  std::cout << "replaying the built-in demo script "
               "(run with '-' to type commands)\n";
  std::string line;
  std::istringstream script(kDemoScript);
  while (std::getline(script, line)) {
    const size_t first = line.find_first_not_of(" \t");
    if (first != std::string::npos && line[first] != '#') {
      std::cout << "\n> " << line << "\n";
    }
    Status st = console.Execute(
        first != std::string::npos && line[first] == '#' ? "" : line);
    if (!st.ok()) {
      std::cout << "error: " << st << "\n";
      return 1;
    }
  }
  return 0;
}
