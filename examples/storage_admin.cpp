// Storage-administrator tour: the array features underneath the demo,
// driven directly (volumes, journals, snapshots, snapshot groups,
// restore-from-snapshot after a "ransomware" event, suspend/resync).
//
//   ./build/examples/storage_admin
#include <cstdio>

#include "common/logging.h"
#include "replication/replication.h"
#include "sim/environment.h"
#include "sim/network.h"
#include "snapshot/snapshot.h"
#include "storage/array.h"

using namespace zerobak;

int main() {
  SetLogLevel(LogLevel::kError);
  sim::SimEnvironment env;
  storage::ArrayConfig cfg;
  cfg.serial = "G370-LAB";
  cfg.media = block::DeviceLatencyModel{0, 0, 0, 0, 1};
  storage::StorageArray array(&env, cfg);
  snapshot::SnapshotManager snapshots(&array);

  std::printf("--- volume administration ---\n");
  auto db_vol = array.CreateVolume("prod-db", 4096);
  auto log_vol = array.CreateVolume("prod-log", 1024);
  std::printf("created %zu volumes; handle of prod-db: %s\n",
              array.ListVolumes().size(),
              array.VolumeHandle(*db_vol).c_str());

  std::string block_a(block::kDefaultBlockSize, 'A');
  for (block::Lba lba = 0; lba < 32; ++lba) {
    ZB_CHECK(array.WriteSync(*db_vol, lba, block_a).ok());
  }
  std::printf("prod-db populated: %llu allocated blocks\n",
              (unsigned long long)array.GetVolume(*db_vol)
                  ->store()
                  .allocated_blocks());

  std::printf("\n--- snapshot group (point-in-time protection) ---\n");
  auto group = snapshots.CreateSnapshotGroup({*db_vol, *log_vol},
                                             "nightly");
  auto info = snapshots.GetGroup(*group);
  std::printf("snapshot group '%s' created atomically at t=%s with %zu "
              "members (0 blocks copied)\n",
              info->name.c_str(), FormatDuration(info->created_at).c_str(),
              info->members.size());

  std::printf("\n--- ransomware scribbles over the volume ---\n");
  std::string garbage(block::kDefaultBlockSize, '#');
  for (block::Lba lba = 0; lba < 32; ++lba) {
    ZB_CHECK(array.WriteSync(*db_vol, lba, garbage).ok());
  }
  snapshot::CowSnapshot* snap = snapshots.GetSnapshot(info->members[0]);
  std::printf("volume corrupted; snapshot preserved %llu old blocks via "
              "copy-on-write\n",
              (unsigned long long)snap->preserved_blocks());

  ZB_CHECK(snapshots.RestoreVolume(snap->id()).ok());
  std::string readback;
  ZB_CHECK(array.ReadSync(*db_vol, 0, 1, &readback).ok());
  std::printf("restore from snapshot: block 0 %s\n",
              readback == block_a ? "RECOVERED" : "still corrupt");

  std::printf("\n--- replication operations (suspend / resync) ---\n");
  storage::ArrayConfig remote_cfg;
  remote_cfg.serial = "G370-DR";
  remote_cfg.media = block::DeviceLatencyModel{0, 0, 0, 0, 2};
  storage::StorageArray remote(&env, remote_cfg);
  sim::NetworkLinkConfig link_cfg;
  link_cfg.base_latency = Milliseconds(3);
  sim::NetworkLink fwd(&env, link_cfg, "fwd");
  sim::NetworkLink rev(&env, link_cfg, "rev");
  replication::ReplicationEngine engine(&env, &array, &remote, &fwd, &rev);

  auto cg = engine.CreateConsistencyGroup({.name = "dr-cg"});
  auto r_db = remote.CreateVolume("r-prod-db", 4096);
  auto pair = engine.CreatePair(
      {.name = "db-pair",
       .primary = *db_vol,
       .secondary = *r_db,
       .mode = replication::ReplicationMode::kAsynchronous,
       .group = *cg});
  env.RunFor(Milliseconds(50));  // Initial copy.
  std::printf("pair state after initial copy: %s\n",
              PairStateName(engine.GetPair(*pair)->state()));

  ZB_CHECK(engine.SuspendGroup(*cg).ok());
  std::string block_b(block::kDefaultBlockSize, 'B');
  for (block::Lba lba = 100; lba < 110; ++lba) {
    ZB_CHECK(array.WriteSync(*db_vol, lba, block_b).ok());
  }
  std::printf("suspended; %zu dirty blocks tracked while split\n",
              engine.GetPair(*pair)->dirty_blocks());

  ZB_CHECK(engine.ResyncGroup(*cg).ok());
  env.RunFor(Milliseconds(50));
  std::printf("resynced; pair state: %s, volumes identical: %s\n",
              PairStateName(engine.GetPair(*pair)->state()),
              array.GetVolume(*db_vol)->ContentEquals(
                  *remote.GetVolume(*r_db))
                  ? "yes"
                  : "no");

  std::printf("\n--- journal watermarks ---\n");
  auto stats = engine.GetGroupStats(*cg);
  std::printf("written=%llu shipped=%llu applied=%llu journal_used=%llu "
              "bytes\n",
              (unsigned long long)stats->written,
              (unsigned long long)stats->shipped,
              (unsigned long long)stats->applied,
              (unsigned long long)stats->journal_used_bytes);
  return 0;
}
