// E8 (extension) — Disaster-recovery operation costs: takeover (RTO
// components) and giveback (failback delta). The paper demonstrates the
// protection pipeline; this bench quantifies the recovery side that the
// protection exists for.
//
//   (a) RTO: wall-clock cost of failover + database recovery +
//       verification on the backup site, vs business history size;
//   (b) failback: giveback delta size and convergence after running the
//       business on the backup site during an outage.
#include <chrono>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/verify.h"

namespace zerobak::bench {
namespace {

double WallMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void RunRto() {
  PrintTitle(
      "E8a: recovery cost after a disaster vs business history size "
      "(wall-clock of takeover + DB recovery + verification)");
  PrintLine("%10s %12s %14s %14s %12s %12s", "orders", "recovered",
            "failover_ms", "recover_ms", "verify_ms", "consistent");
  PrintRule();
  for (int orders : {500, 2000, 8000}) {
    sim::SimEnvironment env;
    core::DemoSystemConfig config = FunctionalConfig();
    config.link.base_latency = Milliseconds(2);
    core::DemoSystem system(&env, config);
    BusinessProcess bp = DeployBusinessProcess(&system, "shop");
    ZB_CHECK(system.TagNamespaceForBackup("shop").ok());
    ZB_CHECK(system.WaitForBackupConfigured("shop").ok());
    Rng rng(5);
    for (int i = 0; i < orders; ++i) {
      ZB_CHECK(bp.app->PlaceOrder().ok());
      env.RunFor(static_cast<SimDuration>(rng.Uniform(Microseconds(50))));
    }
    system.FailMainSite();

    auto t0 = std::chrono::steady_clock::now();
    ZB_CHECK(system.Failover("shop").ok());
    const double failover_ms = WallMs(t0);

    t0 = std::chrono::steady_clock::now();
    RecoveryOutcome outcome = RecoverOnBackup(&system, "shop");
    const double recover_ms = WallMs(t0);
    ZB_CHECK(outcome.recovered);

    // Verification: re-run the checker as the fire drill would.
    t0 = std::chrono::steady_clock::now();
    RecoveryOutcome again = RecoverOnBackup(&system, "shop");
    const double verify_ms = WallMs(t0);

    PrintLine("%10d %12llu %14.2f %14.2f %12.2f %12s", orders,
              static_cast<unsigned long long>(outcome.orders), failover_ms,
              recover_ms, verify_ms,
              (!outcome.report.collapsed() && !again.report.collapsed())
                  ? "yes"
                  : "NO");
  }
  PrintRule();
  PrintLine("Expected shape: takeover is O(backlog) and sub-millisecond; "
            "database recovery grows with the WAL size but stays far "
            "below any business-meaningful RTO.");
}

void RunFailback() {
  PrintTitle(
      "E8b: failback (giveback) delta vs business activity during the "
      "outage");
  PrintLine("%16s %14s %14s %12s", "outage_orders", "blocks_shipped",
            "converged", "post_ok");
  PrintRule();
  for (int outage_orders : {0, 50, 500}) {
    sim::SimEnvironment env;
    core::DemoSystemConfig config = FunctionalConfig();
    config.link.base_latency = Milliseconds(2);
    core::DemoSystem system(&env, config);
    BusinessProcess bp = DeployBusinessProcess(&system, "shop");
    ZB_CHECK(system.TagNamespaceForBackup("shop").ok());
    ZB_CHECK(system.WaitForBackupConfigured("shop").ok());
    for (int i = 0; i < 100; ++i) ZB_CHECK(bp.app->PlaceOrder().ok());
    env.RunFor(Milliseconds(100));

    system.FailMainSite();
    ZB_CHECK(system.Failover("shop").ok());

    // The business resumes on the backup site during the outage.
    if (outage_orders > 0) {
      auto sales_vol = system.ResolveBackupVolume("shop", "sales-db");
      auto stock_vol = system.ResolveBackupVolume("shop", "stock-db");
      ZB_CHECK(sales_vol.ok() && stock_vol.ok());
      storage::ArrayVolumeDevice sales_dev(system.backup_site()->array(),
                                           *sales_vol);
      storage::ArrayVolumeDevice stock_dev(system.backup_site()->array(),
                                           *stock_vol);
      auto sales = db::MiniDb::Open(&sales_dev, BenchDbOptions());
      auto stock = db::MiniDb::Open(&stock_dev, BenchDbOptions());
      ZB_CHECK(sales.ok() && stock.ok());
      workload::EcommerceApp dr_app(sales->get(), stock->get());
      for (int i = 0; i < outage_orders; ++i) {
        ZB_CHECK(dr_app.PlaceOrder().ok());
      }
    }

    system.RepairMainSite();
    auto report = system.Failback("shop");
    ZB_CHECK(report.ok());
    env.RunFor(Milliseconds(100));

    // Converged?
    auto main_sales = system.ResolveMainVolume("shop", "sales-db");
    auto backup_sales = system.ResolveBackupVolume("shop", "sales-db");
    const bool converged =
        system.main_site()->array()->GetVolume(*main_sales)->ContentEquals(
            *system.backup_site()->array()->GetVolume(*backup_sales));

    // And forward protection works again end to end.
    for (int i = 0; i < 20; ++i) ZB_CHECK(bp.app->PlaceOrder().ok());
    env.RunFor(Milliseconds(100));
    const bool post_ok =
        system.main_site()->array()->GetVolume(*main_sales)->ContentEquals(
            *system.backup_site()->array()->GetVolume(*backup_sales));

    PrintLine("%16d %14llu %14s %12s", outage_orders,
              static_cast<unsigned long long>(report->blocks_shipped),
              converged ? "yes" : "NO", post_ok ? "yes" : "NO");
  }
  PrintRule();
  PrintLine("Expected shape: the giveback ships only the blocks the "
            "outage touched (0 for an idle outage), both sites converge "
            "and forward protection resumes.");
}

}  // namespace
}  // namespace zerobak::bench

int main() {
  zerobak::SetLogLevel(zerobak::LogLevel::kError);
  zerobak::bench::RunRto();
  zerobak::bench::RunFailback();
}
