// E5 — Data-analytics step (Fig. 6).
//
// Two sub-experiments:
//   (a) functional: analytics queries on the backup-site snapshot group
//       return the exact frozen-at-snapshot aggregates, while replication
//       keeps applying and the main site keeps taking orders;
//   (b) timed: main-site transaction latency is unchanged whether the
//       backup array is idle or saturated with analytics reads — the
//       "no impact on business processing" claim for backup utilization.
#include "bench/bench_util.h"
#include "common/rng.h"
#include "replication/replication.h"
#include "snapshot/snapshot.h"
#include "workload/analytics.h"
#include "workload/latency_driver.h"

namespace zerobak::bench {
namespace {

void RunFunctional() {
  PrintTitle(
      "E5a: analytics on the snapshot group while replication continues");
  sim::SimEnvironment env;
  core::DemoSystemConfig config = FunctionalConfig();
  config.link.base_latency = Milliseconds(2);
  core::DemoSystem system(&env, config);
  BusinessProcess bp = DeployBusinessProcess(&system, "shop");
  ZB_CHECK(system.TagNamespaceForBackup("shop").ok());
  ZB_CHECK(system.WaitForBackupConfigured("shop").ok());

  Rng rng(42);
  int64_t revenue_at_snapshot = 0;
  for (int i = 0; i < 200; ++i) {
    auto order = bp.app->PlaceOrder();
    ZB_CHECK(order.ok());
    revenue_at_snapshot += order->amount_cents;
    env.RunFor(static_cast<SimDuration>(rng.Uniform(Microseconds(200))));
  }
  env.RunFor(Milliseconds(100));  // Fully drained: snapshot sees all 200.

  // Snapshot development (demo step 2) via the container platform.
  ZB_CHECK(system.CreateSnapshotGroupCr("shop", "analytics").ok());
  ZB_CHECK(system.WaitForSnapshotGroup("shop", "analytics").ok());
  auto sales_snap = system.ResolveSnapshot("shop", "analytics", "sales-db");
  auto stock_snap = system.ResolveSnapshot("shop", "analytics", "stock-db");
  ZB_CHECK(sales_snap.ok() && stock_snap.ok());

  auto group = system.ReplicationGroupOf("shop");
  ZB_CHECK(group.ok());
  auto stats_before = system.replication()->GetGroupStats(*group);

  // Business continues while analytics runs on the snapshot.
  for (int i = 0; i < 150; ++i) {
    ZB_CHECK(bp.app->PlaceOrder().ok());
    env.RunFor(static_cast<SimDuration>(rng.Uniform(Microseconds(200))));
  }

  auto sales_db = db::MiniDb::Open(*sales_snap, BenchDbOptions());
  auto stock_db = db::MiniDb::Open(*stock_snap, BenchDbOptions());
  ZB_CHECK(sales_db.ok() && stock_db.ok());
  auto summary = workload::SummarizeSales(sales_db->get());
  auto stock_summary = workload::SummarizeStock(stock_db->get());
  auto top = workload::TopItems(sales_db->get(), 3);
  env.RunFor(Milliseconds(100));
  auto stats_after = system.replication()->GetGroupStats(*group);

  PrintLine("%-44s %16s %16s", "metric", "snapshot_view", "expected");
  PrintRule();
  PrintLine("%-44s %16llu %16d", "orders visible to analytics",
            static_cast<unsigned long long>(summary.order_count), 200);
  PrintLine("%-44s %16lld %16lld", "revenue_cents (frozen at snapshot)",
            static_cast<long long>(summary.revenue_cents),
            static_cast<long long>(revenue_at_snapshot));
  PrintLine("%-44s %16lld %16s", "stock units sold (frozen)",
            static_cast<long long>(stock_summary.total_sold), "-");
  PrintLine("%-44s %16s %16s", "top item",
            top.empty() ? "-" : top[0].item.c_str(), "-");
  PrintLine("%-44s %16llu %16s", "records applied before analytics",
            static_cast<unsigned long long>(stats_before->applied), "-");
  PrintLine("%-44s %16llu %16s",
            "records applied after analytics (grew)",
            static_cast<unsigned long long>(stats_after->applied), "-");
  PrintLine("%-44s %16llu %16d", "orders placed during analytics",
            static_cast<unsigned long long>(bp.app->orders_placed() - 200),
            150);
  PrintRule();
  PrintLine("Expected shape: the snapshot aggregates match the "
            "at-snapshot ground truth exactly, and the applied watermark "
            "keeps advancing during the scan.");
}

void RunTimed() {
  PrintTitle(
      "E5b: main-site transaction latency with the backup array idle vs "
      "saturated by analytics reads");
  PrintLine("%24s %12s %12s %12s", "backup_load", "mean_ms", "p99_ms",
            "txn_per_s");
  PrintRule();
  for (bool analytics_load : {false, true}) {
    sim::SimEnvironment env;
    storage::ArrayConfig media;
    media.media = block::DeviceLatencyModel{Microseconds(150),
                                            Microseconds(200),
                                            Microseconds(5),
                                            Microseconds(20), 1};
    storage::ArrayConfig main_cfg = media;
    main_cfg.serial = "MAIN";
    storage::ArrayConfig backup_cfg = media;
    backup_cfg.serial = "BKUP";
    storage::StorageArray main(&env, main_cfg);
    storage::StorageArray backup(&env, backup_cfg);
    sim::NetworkLinkConfig link_cfg;
    link_cfg.base_latency = Milliseconds(5);
    sim::NetworkLink fwd(&env, link_cfg, "fwd");
    sim::NetworkLink rev(&env, link_cfg, "rev");
    replication::ReplicationEngine engine(&env, &main, &backup, &fwd,
                                          &rev);

    auto p = main.CreateVolume("sales", 4096);
    auto s = backup.CreateVolume("r-sales", 4096);
    ZB_CHECK(p.ok() && s.ok());
    replication::ConsistencyGroupConfig cg;
    auto group = engine.CreateConsistencyGroup(cg);
    ZB_CHECK(group.ok());
    replication::PairConfig pc;
    pc.primary = *p;
    pc.secondary = *s;
    pc.mode = replication::ReplicationMode::kAsynchronous;
    pc.group = *group;
    ZB_CHECK(engine.CreatePair(pc).ok());
    env.RunFor(Milliseconds(20));

    // Analytics: 32 concurrent streaming readers on the backup array.
    if (analytics_load) {
      auto snap_vol = backup.CreateVolume("analytics-clone", 4096);
      ZB_CHECK(snap_vol.ok());
      struct Reader {
        static void Next(storage::StorageArray* array,
                         storage::VolumeId vol, uint64_t lba) {
          array->SubmitHostRead(vol, lba % 4096, 8,
                                [array, vol, lba](block::IoResult) {
                                  Next(array, vol, lba + 8);
                                });
        }
      };
      for (int r = 0; r < 32; ++r) {
        Reader::Next(&backup, *snap_vol, static_cast<uint64_t>(r) * 128);
      }
    }

    workload::DriverConfig driver_cfg;
    driver_cfg.steps = {workload::TxnIoStep{*p, 1},
                        workload::TxnIoStep{*p, 1}};
    driver_cfg.clients = 4;
    workload::ClosedLoopDriver driver(&env, &main, driver_cfg);
    driver.Start();
    env.RunFor(Seconds(1));
    driver.Stop();
    env.RunFor(Milliseconds(50));
    PrintLine("%24s %12.3f %12.3f %12.0f",
              analytics_load ? "32 analytics readers" : "idle",
              driver.txn_latency().Mean() / 1e6,
              driver.txn_latency().Percentile(99) / 1e6,
              driver.TxnPerSecond());
  }
  PrintRule();
  PrintLine("Expected shape: identical latency rows — analytics on the "
            "backup site does not touch the main site's IO path.");
}

}  // namespace
}  // namespace zerobak::bench

int main() {
  zerobak::SetLogLevel(zerobak::LogLevel::kError);
  zerobak::bench::RunFunctional();
  zerobak::bench::RunTimed();
}
