// E7 — Design-choice ablations for the ADC transfer engine (DESIGN.md
// section 4): transfer batch size x wakeup interval, consistency-group
// size scaling, and link bandwidth. Metrics are the steady-state apply
// lag and journal backlog under a fixed aggregate write rate.
#include "bench/bench_util.h"
#include "common/rng.h"
#include "replication/replication.h"
#include "workload/latency_driver.h"

namespace zerobak::bench {
namespace {

struct Rig {
  std::unique_ptr<sim::SimEnvironment> env;
  std::unique_ptr<storage::StorageArray> main;
  std::unique_ptr<storage::StorageArray> backup;
  std::unique_ptr<sim::NetworkLink> fwd;
  std::unique_ptr<sim::NetworkLink> rev;
  std::unique_ptr<replication::ReplicationEngine> engine;
};

Rig MakeRig(double bandwidth_bytes_per_sec = 1.25e9) {
  Rig rig;
  rig.env = std::make_unique<sim::SimEnvironment>();
  storage::ArrayConfig zero;
  zero.media = block::DeviceLatencyModel{0, 0, 0, 0, 1};
  storage::ArrayConfig main_cfg = zero;
  main_cfg.serial = "MAIN";
  storage::ArrayConfig backup_cfg = zero;
  backup_cfg.serial = "BKUP";
  rig.main = std::make_unique<storage::StorageArray>(rig.env.get(),
                                                     main_cfg);
  rig.backup = std::make_unique<storage::StorageArray>(rig.env.get(),
                                                       backup_cfg);
  sim::NetworkLinkConfig link_cfg;
  link_cfg.base_latency = Milliseconds(5);
  link_cfg.jitter = Microseconds(500);
  link_cfg.bandwidth_bytes_per_sec = bandwidth_bytes_per_sec;
  rig.fwd = std::make_unique<sim::NetworkLink>(rig.env.get(), link_cfg,
                                               "fwd");
  rig.rev = std::make_unique<sim::NetworkLink>(rig.env.get(), link_cfg,
                                               "rev");
  rig.engine = std::make_unique<replication::ReplicationEngine>(
      rig.env.get(), rig.main.get(), rig.backup.get(), rig.fwd.get(),
      rig.rev.get());
  return rig;
}

// Drives `write_rate` single-block writes per second, spread uniformly
// across the volumes, for `duration`; returns the final group stats.
replication::GroupStats DriveFixedRate(
    Rig* rig, const std::vector<storage::VolumeId>& volumes,
    replication::GroupId group, double write_rate, SimDuration duration) {
  Rng rng(3);
  const auto period = static_cast<SimDuration>(kSecond / write_rate);
  const std::string payload(block::kDefaultBlockSize, 'a');
  const SimTime until = rig->env->now() + duration;
  size_t next = 0;
  while (rig->env->now() < until) {
    ZB_CHECK(rig->main
                 ->WriteSync(volumes[next % volumes.size()],
                             rng.Uniform(1024), payload)
                 .ok());
    ++next;
    rig->env->RunFor(period);
  }
  auto stats = rig->engine->GetGroupStats(group);
  ZB_CHECK(stats.ok());
  return *stats;
}

void RunBatchIntervalAblation() {
  PrintTitle(
      "E7a: ADC transfer-engine ablation — batch size x wakeup interval "
      "(20k writes/s, 5 ms link)");
  PrintLine("%12s %12s %14s %14s %14s", "interval_ms", "batch", "lag_ms",
            "backlog_recs", "overflows");
  PrintRule();
  for (SimDuration interval :
       {Microseconds(500), Milliseconds(2), Milliseconds(8),
        Milliseconds(32)}) {
    for (uint64_t batch : {64ull << 10, 1ull << 20, 8ull << 20}) {
      Rig rig = MakeRig();
      auto p = rig.main->CreateVolume("p", 4096);
      auto s = rig.backup->CreateVolume("s", 4096);
      ZB_CHECK(p.ok() && s.ok());
      replication::ConsistencyGroupConfig cg;
      cg.transfer_interval = interval;
      cg.transfer_batch_bytes = batch;
      // The sweep measures FIXED batch sizes; the adaptive controller
      // would otherwise walk every cell toward the same operating point.
      cg.enable_adaptive_batching = false;
      cg.journal_capacity_bytes = 512ull << 20;
      auto group = rig.engine->CreateConsistencyGroup(cg);
      ZB_CHECK(group.ok());
      replication::PairConfig pc;
      pc.primary = *p;
      pc.secondary = *s;
      pc.mode = replication::ReplicationMode::kAsynchronous;
      pc.group = *group;
      ZB_CHECK(rig.engine->CreatePair(pc).ok());
      rig.env->RunFor(Milliseconds(20));

      auto stats = DriveFixedRate(&rig, {*p}, *group, 20000.0,
                                  Milliseconds(500));
      PrintLine("%12.1f %11lluK %14.2f %14llu %14llu",
                ToMilliseconds(interval),
                static_cast<unsigned long long>(batch >> 10),
                ToMilliseconds(stats.apply_lag),
                static_cast<unsigned long long>(stats.written -
                                                stats.applied),
                static_cast<unsigned long long>(stats.journal_overflows));
    }
  }
  PrintRule();
  PrintLine("Expected shape: lag ~ interval + link delay; small batches "
            "with long intervals cannot keep up and the backlog grows.");
}

void RunGroupSizeAblation() {
  PrintTitle(
      "E7b: consistency-group size scaling (fixed 20k writes/s aggregate "
      "across N volumes sharing one journal)");
  PrintLine("%10s %14s %14s %16s", "volumes", "lag_ms", "backlog_recs",
            "applied_recs");
  PrintRule();
  for (int volumes : {1, 4, 16, 64}) {
    Rig rig = MakeRig();
    replication::ConsistencyGroupConfig cg;
    cg.journal_capacity_bytes = 512ull << 20;
    auto group = rig.engine->CreateConsistencyGroup(cg);
    ZB_CHECK(group.ok());
    std::vector<storage::VolumeId> pvols;
    for (int i = 0; i < volumes; ++i) {
      auto p = rig.main->CreateVolume("p" + std::to_string(i), 4096);
      auto s = rig.backup->CreateVolume("s" + std::to_string(i), 4096);
      ZB_CHECK(p.ok() && s.ok());
      replication::PairConfig pc;
      pc.primary = *p;
      pc.secondary = *s;
      pc.mode = replication::ReplicationMode::kAsynchronous;
      pc.group = *group;
      ZB_CHECK(rig.engine->CreatePair(pc).ok());
      pvols.push_back(*p);
    }
    rig.env->RunFor(Milliseconds(20));
    auto stats = DriveFixedRate(&rig, pvols, *group, 20000.0,
                                Milliseconds(500));
    PrintLine("%10d %14.2f %14llu %16llu", volumes,
              ToMilliseconds(stats.apply_lag),
              static_cast<unsigned long long>(stats.written -
                                              stats.applied),
              static_cast<unsigned long long>(stats.applied));
  }
  PrintRule();
  PrintLine("Expected shape: the shared journal's lag is independent of "
            "how many volumes feed it — group size is free, which is why "
            "one group per namespace is viable.");
}

void RunBandwidthAblation() {
  PrintTitle(
      "E7c: link bandwidth ablation (20k writes/s = ~82 MB/s of journal "
      "traffic)");
  PrintLine("%16s %14s %14s %14s", "bandwidth", "lag_ms", "backlog_recs",
            "overflows");
  PrintRule();
  struct Bw {
    const char* label;
    double bytes_per_sec;
  };
  for (const Bw& bw : {Bw{"10Gbit/s", 1.25e9}, Bw{"1Gbit/s", 1.25e8},
                       Bw{"400Mbit/s", 5e7}}) {
    Rig rig = MakeRig(bw.bytes_per_sec);
    auto p = rig.main->CreateVolume("p", 4096);
    auto s = rig.backup->CreateVolume("s", 4096);
    ZB_CHECK(p.ok() && s.ok());
    replication::ConsistencyGroupConfig cg;
    cg.journal_capacity_bytes = 64ull << 20;
    auto group = rig.engine->CreateConsistencyGroup(cg);
    ZB_CHECK(group.ok());
    replication::PairConfig pc;
    pc.primary = *p;
    pc.secondary = *s;
    pc.mode = replication::ReplicationMode::kAsynchronous;
    pc.group = *group;
    ZB_CHECK(rig.engine->CreatePair(pc).ok());
    rig.env->RunFor(Milliseconds(20));
    auto stats = DriveFixedRate(&rig, {*p}, *group, 20000.0,
                                Milliseconds(500));
    PrintLine("%16s %14.2f %14llu %14llu", bw.label,
              ToMilliseconds(stats.apply_lag),
              static_cast<unsigned long long>(stats.written -
                                              stats.applied),
              static_cast<unsigned long long>(stats.journal_overflows));
  }
  PrintRule();
  PrintLine("Expected shape: an under-provisioned link cannot drain the "
            "journal; the backlog (and eventually the journal) fills — "
            "the sizing rule the configuration guides warn about.");
}

}  // namespace
}  // namespace zerobak::bench

int main() {
  zerobak::SetLogLevel(zerobak::LogLevel::kError);
  zerobak::bench::RunBatchIntervalAblation();
  zerobak::bench::RunGroupSizeAblation();
  zerobak::bench::RunBandwidthAblation();
}
