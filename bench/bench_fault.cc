// E9 — Failure detection and automatic recovery (fault model).
//
// Two tables. (1) Time to reconverge after a clean partition of length L:
// the ack-deadline detector suspends the group, auto-resync with backoff
// brings it back once the link heals; an undersized journal overflows
// during the outage and recovers through the same path. (2) Behaviour
// under sustained chaos (seeded FaultSchedule link flaps + random drops)
// at increasing flap intensity: host writes never fail, and the recovery
// machinery converges on its own after the faults clear.
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "fault/fault_schedule.h"
#include "replication/replication.h"
#include "storage/array.h"

namespace zerobak::bench {
namespace {

constexpr int kVolumes = 2;
constexpr uint64_t kBlocks = 128;

storage::ArrayConfig ZeroLatencyArray(const std::string& serial,
                                      uint64_t seed) {
  storage::ArrayConfig cfg;
  cfg.serial = serial;
  cfg.media = block::DeviceLatencyModel{0, 0, 0, 0, seed};
  return cfg;
}

sim::NetworkLinkConfig BenchLink(uint64_t seed) {
  sim::NetworkLinkConfig cfg;
  cfg.base_latency = Milliseconds(1);
  cfg.jitter = Microseconds(200);
  cfg.bandwidth_bytes_per_sec = 0;
  cfg.seed = seed;
  return cfg;
}

struct Rig {
  explicit Rig(uint64_t seed, uint64_t journal_bytes)
      : main(&env, ZeroLatencyArray("MAIN", 1)),
        backup(&env, ZeroLatencyArray("BKUP", 2)),
        to_backup(&env, BenchLink(seed * 31 + 1), "fwd"),
        to_main(&env, BenchLink(seed * 31 + 2), "rev"),
        engine(&env, &main, &backup, &to_backup, &to_main),
        rng(seed) {
    replication::ConsistencyGroupConfig cfg;
    cfg.name = "bench";
    cfg.journal_capacity_bytes = static_cast<int64_t>(journal_bytes);
    cfg.transfer_interval = Milliseconds(1);
    cfg.ack_timeout = Milliseconds(10);
    cfg.resync_backoff_initial = Milliseconds(2);
    cfg.resync_backoff_max = Milliseconds(20);
    group = std::move(engine.CreateConsistencyGroup(cfg)).value();
    for (int v = 0; v < kVolumes; ++v) {
      auto p = main.CreateVolume("vol" + std::to_string(v), kBlocks);
      auto s = backup.CreateVolume("r-vol" + std::to_string(v), kBlocks);
      ZB_CHECK(p.ok() && s.ok());
      pvols.push_back(*p);
      svols.push_back(*s);
      replication::PairConfig pc;
      pc.name = "pair" + std::to_string(v);
      pc.primary = *p;
      pc.secondary = *s;
      pc.mode = replication::ReplicationMode::kAsynchronous;
      pc.group = group;
      pairs.push_back(std::move(engine.CreatePair(pc)).value());
    }
    env.RunFor(Milliseconds(5));
  }

  void Write() {
    const int vol = static_cast<int>(rng.Uniform(kVolumes));
    const uint64_t lba = rng.Uniform(kBlocks);
    std::string data(block::kDefaultBlockSize,
                     static_cast<char>('a' + (writes % 26)));
    ZB_CHECK(main.WriteSync(pvols[static_cast<size_t>(vol)], lba, data)
                 .ok());
    ++writes;
  }

  void RunWrites(int n, SimDuration mean_gap) {
    for (int i = 0; i < n; ++i) {
      Write();
      env.RunFor(static_cast<SimDuration>(
          rng.Uniform(static_cast<uint64_t>(mean_gap)) +
          Microseconds(50)));
    }
  }

  bool Converged() {
    auto stats = engine.GetGroupStats(group);
    if (!stats.ok() || stats->suspended ||
        stats->applied != stats->written) {
      return false;
    }
    for (int v = 0; v < kVolumes; ++v) {
      if (engine.GetPair(pairs[static_cast<size_t>(v)])->state() !=
          replication::PairState::kPaired) {
        return false;
      }
      if (!main.GetVolume(pvols[static_cast<size_t>(v)])
               ->ContentEquals(
                   *backup.GetVolume(svols[static_cast<size_t>(v)]))) {
        return false;
      }
    }
    return true;
  }

  // Sim-time from now until full convergence; -1 if it never happens.
  double ReconvergeMs() {
    const SimTime start = env.now();
    for (int round = 0; round < 400; ++round) {
      if (Converged()) return ToMilliseconds(env.now() - start);
      env.RunFor(Milliseconds(1));
    }
    return -1;
  }

  sim::SimEnvironment env;
  storage::StorageArray main;
  storage::StorageArray backup;
  sim::NetworkLink to_backup;
  sim::NetworkLink to_main;
  replication::ReplicationEngine engine;
  Rng rng;
  replication::GroupId group = 0;
  std::vector<storage::VolumeId> pvols;
  std::vector<storage::VolumeId> svols;
  std::vector<replication::PairId> pairs;
  uint64_t writes = 0;
};

void PartitionTable() {
  PrintTitle(
      "E9a: auto-recovery after a clean partition of length L (ack "
      "timeout 10 ms, resync backoff 2..20 ms; no operator action)");
  PrintLine("%12s %10s %10s %10s %10s %10s %14s", "outage_ms", "journal",
            "writes", "ack_to", "attempts", "overflow", "reconverge_ms");
  PrintRule();
  struct JournalSize {
    const char* label;
    uint64_t bytes;
  };
  const JournalSize sizes[] = {{"64KiB", 64ull << 10},
                               {"4MiB", 4ull << 20}};
  for (SimDuration outage : {Milliseconds(2), Milliseconds(10),
                             Milliseconds(50), Milliseconds(200)}) {
    for (const JournalSize& size : sizes) {
      Rig rig(42, size.bytes);
      rig.RunWrites(100, Microseconds(400));
      // Partition both directions; keep writing through the outage.
      rig.to_backup.SetConnected(false);
      rig.to_main.SetConnected(false);
      const int during =
          static_cast<int>(outage / Microseconds(450)) + 1;
      rig.RunWrites(during, Microseconds(400));
      rig.to_backup.SetConnected(true);
      rig.to_main.SetConnected(true);
      const double ms = rig.ReconvergeMs();
      auto stats = rig.engine.GetGroupStats(rig.group);
      ZB_CHECK(stats.ok());
      PrintLine("%12.1f %10s %10llu %10llu %10llu %10s %14.1f",
                ToMilliseconds(outage), size.label,
                static_cast<unsigned long long>(rig.writes),
                static_cast<unsigned long long>(stats->ack_timeouts),
                static_cast<unsigned long long>(
                    stats->auto_resync_attempts),
                stats->journal_overflows > 0 ? "yes" : "no", ms);
    }
    PrintRule();
  }
  PrintLine("Expected shape: detection adds ~one ack timeout; reconverge "
            "time grows with the outage (backlog or full resync after an "
            "overflow) but never needs an operator.");
}

void ChaosTable() {
  PrintTitle(
      "E9b: sustained chaos (link flaps + 2% random drop, seeded "
      "FaultSchedule) at increasing flap intensity");
  PrintLine("%14s %8s %8s %8s %10s %10s %10s %14s", "mean_flap_ms",
            "faults", "dropped", "ack_to", "resync_to", "attempts",
            "overflow", "reconverge_ms");
  PrintRule();
  for (SimDuration mean_flap : {Milliseconds(50), Milliseconds(20),
                                Milliseconds(10), Milliseconds(5)}) {
    Rig rig(7, 256ull << 10);
    fault::FaultScheduleConfig fcfg;
    fcfg.seed = 99;
    fcfg.horizon = Milliseconds(150);
    fcfg.mean_flap_interval = mean_flap;
    fcfg.min_outage = Milliseconds(1);
    fcfg.max_outage = Milliseconds(6);
    fcfg.mean_spike_interval = Milliseconds(40);
    fcfg.spike_latency = Milliseconds(3);
    fault::FaultSchedule schedule(&rig.env, fcfg);
    schedule.AddLink(&rig.to_backup);
    schedule.AddLink(&rig.to_main);
    schedule.Arm();
    rig.to_backup.set_drop_probability(0.02);
    rig.to_main.set_drop_probability(0.02);
    rig.RunWrites(300, Microseconds(400));
    schedule.Heal();
    rig.to_backup.set_drop_probability(0.0);
    rig.to_main.set_drop_probability(0.0);
    const double ms = rig.ReconvergeMs();
    auto stats = rig.engine.GetGroupStats(rig.group);
    ZB_CHECK(stats.ok());
    PrintLine("%14.1f %8llu %8llu %8llu %10llu %10llu %10llu %14.1f",
              ToMilliseconds(mean_flap),
              static_cast<unsigned long long>(schedule.faults_fired()),
              static_cast<unsigned long long>(
                  rig.to_backup.messages_dropped() +
                  rig.to_main.messages_dropped()),
              static_cast<unsigned long long>(stats->ack_timeouts),
              static_cast<unsigned long long>(stats->resync_timeouts),
              static_cast<unsigned long long>(
                  stats->auto_resync_attempts),
              static_cast<unsigned long long>(stats->journal_overflows),
              ms);
  }
  PrintRule();
  PrintLine("Expected shape: detection and retry counters grow with flap "
            "intensity; every row reconverges after Heal with zero host "
            "write failures (all writes acked in every cell).");
}

void Run() {
  PartitionTable();
  ChaosTable();
}

}  // namespace
}  // namespace zerobak::bench

int main() {
  zerobak::SetLogLevel(zerobak::LogLevel::kError);
  zerobak::bench::Run();
}
