// E15 — What the at-rest integrity scrubber costs and how fast it heals.
//
//   E15a Scrub idle overhead on the E10 fold workload (hot-10% skewed
//        overwrites at 20k writes/s, folding on, 1 Gbit/s link): the
//        identical run with the scrubber continuously cycling over the
//        group vs scrubbing disabled. On clean volumes the scrubber
//        schedules no repairs and ships zero wire bytes, so the
//        replication results (applies, wire bytes) must be bit-identical
//        either way; the cost is host CPU, reported as applies per
//        host-second and a percent slowdown. Acceptance: < 2%.
//   E15b Time-to-repair vs corruption burden: a converged 4096-block
//        pair gets N secondary-side extents silently bit-rotted, then the
//        scrubber is switched on. Reports the simulated time until every
//        extent is detected, dirty-marked, resynced from the primary and
//        re-verified clean — plus the proof obligations of the chaos
//        drill: zero application-visible bad reads after repair and
//        byte-identical sites.
//
// Writes the results as JSON (default BENCH_scrub.json; --out PATH to
// override). --quick shrinks durations for the ctest smoke run; the
// committed JSON comes from the full run via scripts/run_benches.sh.
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "replication/replication.h"
#include "replication/scrubber.h"

namespace zerobak::bench {
namespace {

struct Rig {
  std::unique_ptr<sim::SimEnvironment> env;
  std::unique_ptr<storage::StorageArray> main;
  std::unique_ptr<storage::StorageArray> backup;
  std::unique_ptr<sim::NetworkLink> fwd;
  std::unique_ptr<sim::NetworkLink> rev;
  std::unique_ptr<replication::ReplicationEngine> engine;
  storage::VolumeId primary = 0;
  storage::VolumeId secondary = 0;
  replication::GroupId group = 0;
};

Rig MakeRig(uint64_t blocks) {
  Rig rig;
  rig.env = std::make_unique<sim::SimEnvironment>();
  storage::ArrayConfig zero;
  zero.media = block::DeviceLatencyModel{0, 0, 0, 0, 1};
  storage::ArrayConfig main_cfg = zero;
  main_cfg.serial = "MAIN";
  storage::ArrayConfig backup_cfg = zero;
  backup_cfg.serial = "BKUP";
  rig.main = std::make_unique<storage::StorageArray>(rig.env.get(), main_cfg);
  rig.backup =
      std::make_unique<storage::StorageArray>(rig.env.get(), backup_cfg);
  sim::NetworkLinkConfig link_cfg;
  link_cfg.base_latency = Milliseconds(5);
  link_cfg.jitter = 0;
  link_cfg.bandwidth_bytes_per_sec = 1.25e8;  // 1 Gbit/s.
  rig.fwd = std::make_unique<sim::NetworkLink>(rig.env.get(), link_cfg, "fwd");
  rig.rev = std::make_unique<sim::NetworkLink>(rig.env.get(), link_cfg, "rev");
  rig.engine = std::make_unique<replication::ReplicationEngine>(
      rig.env.get(), rig.main.get(), rig.backup.get(), rig.fwd.get(),
      rig.rev.get());
  auto p = rig.main->CreateVolume("p", blocks);
  auto s = rig.backup->CreateVolume("s", blocks);
  ZB_CHECK(p.ok() && s.ok());
  rig.primary = *p;
  rig.secondary = *s;
  replication::ConsistencyGroupConfig cg;
  cg.name = "scrubbed";
  cg.transfer_interval = Milliseconds(16);
  cg.journal_capacity_bytes = 64ull << 20;
  cg.enable_write_folding = true;
  cg.ack_timeout = Milliseconds(200);
  cg.resync_backoff_initial = Milliseconds(5);
  cg.resync_backoff_max = Milliseconds(50);
  auto group = rig.engine->CreateConsistencyGroup(cg);
  ZB_CHECK(group.ok());
  rig.group = *group;
  replication::PairConfig pc;
  pc.name = "pair";
  pc.primary = rig.primary;
  pc.secondary = rig.secondary;
  pc.mode = replication::ReplicationMode::kAsynchronous;
  pc.group = *group;
  ZB_CHECK(rig.engine->CreatePair(pc).ok());
  return rig;
}

// ---- E15a: idle overhead on the E10 fold workload ---------------------------

constexpr uint64_t kFoldBlocks = 1024;
constexpr uint64_t kHot = kFoldBlocks / 10;
constexpr double kRate = 20000.0;  // Host writes per second.

struct RunResult {
  uint64_t applied = 0;     // Records applied in the window (sim).
  uint64_t wire_bytes = 0;  // Determinism check against the twin run.
  uint64_t blocks_scanned = 0;
  double host_seconds = 0;
  double applies_per_host_sec = 0;
};

RunResult RunFoldWorkload(bool scrub, bool quick) {
  // The full-mode window must span several 1 s scrub cycles, or the
  // "scrub on" arm would be measured during the inter-cycle idle gap.
  const SimDuration warmup = quick ? Milliseconds(32) : Milliseconds(160);
  const SimDuration measure = quick ? Milliseconds(96) : Milliseconds(3200);

  Rig rig = MakeRig(kFoldBlocks);
  if (scrub) {
    // Deployment defaults: 8 x 256-block extents per 5 ms tick, one full
    // pass per second — the pacing DemoSystemConfig::enable_scrub uses.
    // This is the "idle" figure: what an always-on scrubber costs a busy
    // production group, not a deliberately saturated scan.
    ZB_CHECK(rig.engine->EnableScrubbing(replication::ScrubConfig{}).ok());
  }
  rig.env->RunFor(Milliseconds(20));

  Rng rng(17);
  const auto period = static_cast<SimDuration>(kSecond / kRate);
  const std::string payload(block::kDefaultBlockSize, 'w');
  auto next_lba = [&] {
    return rng.Uniform(10) < 9 ? rng.Uniform(kHot)
                               : kHot + rng.Uniform(kFoldBlocks - kHot);
  };

  const SimTime warm_until = rig.env->now() + warmup;
  while (rig.env->now() < warm_until) {
    ZB_CHECK(rig.main->WriteSync(rig.primary, next_lba(), payload).ok());
    rig.env->RunFor(period);
  }

  auto before = rig.engine->GetGroupStats(rig.group);
  ZB_CHECK(before.ok());
  const uint64_t wire_before = rig.fwd->bytes_sent();
  const SimTime until = rig.env->now() + measure;
  const auto host0 = std::chrono::steady_clock::now();
  while (rig.env->now() < until) {
    ZB_CHECK(rig.main->WriteSync(rig.primary, next_lba(), payload).ok());
    rig.env->RunFor(period);
  }
  const auto host1 = std::chrono::steady_clock::now();
  auto after = rig.engine->GetGroupStats(rig.group);
  ZB_CHECK(after.ok());
  // A clean system must stay untouched: detection only, zero repairs —
  // and the measurement is only honest if scanning actually happened.
  if (scrub) {
    const replication::ScrubStats& st = rig.engine->scrubber()->stats();
    ZB_CHECK(st.blocks_scanned > 0) << "scrubber never ran";
    ZB_CHECK(st.repairs_scheduled == 0 && st.primary_restores == 0 &&
             st.checksum_mismatches == 0)
        << "scrub repaired something on a clean system";
  }

  RunResult res;
  res.applied = after->applied - before->applied;
  res.wire_bytes = rig.fwd->bytes_sent() - wire_before;
  res.blocks_scanned =
      scrub ? rig.engine->scrubber()->stats().blocks_scanned : 0;
  res.host_seconds = std::chrono::duration<double>(host1 - host0).count();
  res.applies_per_host_sec =
      res.host_seconds > 0 ? double(res.applied) / res.host_seconds : 0;
  return res;
}

struct OverheadResult {
  RunResult off;
  RunResult on;
  double overhead_pct = 0;
  bool identical = false;  // Replication results unchanged by scrubbing.
};

OverheadResult MeasureOverhead(bool quick) {
  // Alternate on/off runs and keep the best host time of each, so a
  // scheduler hiccup in one run cannot masquerade as overhead.
  const int iters = quick ? 2 : 5;
  OverheadResult out;
  out.off.host_seconds = 1e9;
  out.on.host_seconds = 1e9;
  for (int it = 0; it < iters; ++it) {
    RunResult off = RunFoldWorkload(false, quick);
    RunResult on = RunFoldWorkload(true, quick);
    if (off.host_seconds < out.off.host_seconds) out.off = off;
    if (on.host_seconds < out.on.host_seconds) out.on = on;
  }
  out.identical = out.off.applied == out.on.applied &&
                  out.off.wire_bytes == out.on.wire_bytes;
  out.overhead_pct = out.off.applies_per_host_sec > 0
                         ? 100.0 * (1.0 - out.on.applies_per_host_sec /
                                              out.off.applies_per_host_sec)
                         : 0;
  return out;
}

// ---- E15b: time-to-repair vs corruption burden ------------------------------

constexpr uint64_t kRepairBlocks = 4096;
constexpr uint32_t kRepairExtent = 16;  // Scrub/repair granularity (blocks).

struct RepairCell {
  int corrupted_extents = 0;
  double detect_ms = 0;  // First mismatch seen by the scrubber.
  double repair_ms = 0;  // All extents healed and re-verified.
  uint64_t repairs_scheduled = 0;
  uint64_t resync_blocks = 0;  // Wire cost of the targeted repair.
  uint64_t bad_reads = 0;      // Application-visible corruption afterwards.
  bool converged = false;
};

RepairCell RunRepairScenario(int corrupted_extents, bool quick) {
  RepairCell cell;
  cell.corrupted_extents = corrupted_extents;

  Rig rig = MakeRig(kRepairBlocks);
  // Populate every block so rot can land anywhere, and converge.
  const std::string run(8 * block::kDefaultBlockSize, 'd');
  for (uint64_t lba = 0; lba < kRepairBlocks; lba += 8) {
    ZB_CHECK(rig.main->WriteSync(rig.primary, lba, run).ok());
    rig.env->RunFor(Microseconds(50));
  }
  rig.env->RunFor(Milliseconds(200));
  block::MemVolume& pstore = rig.main->GetVolume(rig.primary)->store();
  block::MemVolume& sstore = rig.backup->GetVolume(rig.secondary)->store();
  ZB_CHECK(pstore.ContentEquals(sstore));

  // Rot one bit in each of `corrupted_extents` distinct extents, spread
  // evenly over the volume. Deterministic bit choice per extent.
  Rng rng(1000 + corrupted_extents);
  const uint64_t total_extents = kRepairBlocks / kRepairExtent;
  const uint64_t stride = total_extents / corrupted_extents;
  for (int i = 0; i < corrupted_extents; ++i) {
    const uint64_t extent = static_cast<uint64_t>(i) * stride;
    const uint64_t lba = extent * kRepairExtent + rng.Uniform(kRepairExtent);
    ZB_CHECK(sstore.FlipBit(lba, static_cast<uint32_t>(
                                     rng.Uniform(block::kDefaultBlockSize * 8))));
  }

  replication::ScrubConfig sc;
  sc.extent_blocks = kRepairExtent;
  sc.max_extents_per_step = 32;
  sc.step_interval = Milliseconds(1);
  sc.cycle_interval = Milliseconds(5);
  ZB_CHECK(rig.engine->EnableScrubbing(sc).ok());
  const replication::Scrubber* scrub = rig.engine->scrubber();

  const SimTime t0 = rig.env->now();
  SimTime detect_at = 0;
  const SimDuration deadline = quick ? Milliseconds(2000) : Milliseconds(8000);
  while (rig.env->now() - t0 < deadline) {
    rig.env->RunFor(Milliseconds(1));
    if (detect_at == 0 && scrub->stats().checksum_mismatches > 0) {
      detect_at = rig.env->now();
    }
    auto stats = rig.engine->GetGroupStats(rig.group);
    ZB_CHECK(stats.ok());
    if (stats->suspended) continue;
    if (scrub->stats().repairs_scheduled <
        static_cast<uint64_t>(corrupted_extents)) {
      continue;
    }
    if (pstore.ContentEquals(sstore)) break;
  }
  const SimTime healed_at = rig.env->now();

  cell.detect_ms =
      detect_at > 0 ? double(detect_at - t0) / double(kMillisecond) : -1;
  cell.repair_ms = double(healed_at - t0) / double(kMillisecond);
  cell.repairs_scheduled = scrub->stats().repairs_scheduled;
  auto stats = rig.engine->GetGroupStats(rig.group);
  ZB_CHECK(stats.ok());
  cell.resync_blocks = stats->resync_blocks;
  cell.converged = pstore.ContentEquals(sstore) && !stats->suspended;
  // The application-facing proof: every secondary block reads back clean
  // (the targeted resync also refreshed the CRC sidecar).
  std::string out;
  for (uint64_t lba = 0; lba < kRepairBlocks; ++lba) {
    if (!sstore.Read(lba, 1, &out).ok()) ++cell.bad_reads;
  }
  ZB_CHECK(cell.converged) << corrupted_extents << " extents not healed in "
                           << cell.repair_ms << " ms";
  ZB_CHECK(cell.bad_reads == 0);
  return cell;
}

std::vector<RepairCell> RunRepairSweep(bool quick) {
  std::vector<RepairCell> cells;
  const std::vector<int> burdens =
      quick ? std::vector<int>{1, 8} : std::vector<int>{1, 4, 16, 64};
  for (int n : burdens) cells.push_back(RunRepairScenario(n, quick));
  return cells;
}

// ---- JSON + table output ----------------------------------------------------

void WriteJson(const std::string& path, bool quick, const OverheadResult& ov,
               const std::vector<RepairCell>& sweep) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  ZB_CHECK(f != nullptr);
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"bench_scrub\",\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(f, "  \"idle_overhead\": {\n");
  auto run_obj = [&](const char* key, const RunResult& r, const char* tail) {
    std::fprintf(f,
                 "    \"%s\": {\"applied\": %llu, \"wire_bytes\": %llu, "
                 "\"blocks_scanned\": %llu, \"host_seconds\": %.6f, "
                 "\"applies_per_host_sec\": %.0f}%s\n",
                 key, (unsigned long long)r.applied,
                 (unsigned long long)r.wire_bytes,
                 (unsigned long long)r.blocks_scanned, r.host_seconds,
                 r.applies_per_host_sec, tail);
  };
  run_obj("scrub_off", ov.off, ",");
  run_obj("scrub_on", ov.on, ",");
  std::fprintf(f, "    \"sim_results_identical\": %s,\n",
               ov.identical ? "true" : "false");
  std::fprintf(f, "    \"overhead_pct\": %.3f\n", ov.overhead_pct);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"time_to_repair\": [\n");
  for (size_t i = 0; i < sweep.size(); ++i) {
    const RepairCell& c = sweep[i];
    std::fprintf(f,
                 "    {\"corrupted_extents\": %d, \"detect_ms\": %.2f, "
                 "\"repair_ms\": %.2f, \"repairs_scheduled\": %llu, "
                 "\"resync_blocks\": %llu, \"bad_reads\": %llu, "
                 "\"converged\": %s}%s\n",
                 c.corrupted_extents, c.detect_ms, c.repair_ms,
                 (unsigned long long)c.repairs_scheduled,
                 (unsigned long long)c.resync_blocks,
                 (unsigned long long)c.bad_reads,
                 c.converged ? "true" : "false",
                 i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
}

int Run(bool quick, const std::string& out_path) {
  PrintTitle("E15a: scrub idle overhead on the E10 fold workload "
             "(deployment defaults: 8 x 256-block extents / 5 ms tick, "
             "1 s cycle gap)");
  PrintLine("%12s %12s %14s %16s %18s", "mode", "applied", "host_ms",
            "blocks_scanned", "applies_per_host_s");
  PrintRule();
  OverheadResult ov = MeasureOverhead(quick);
  for (const auto& [label, r] :
       {std::pair<const char*, const RunResult&>{"scrub_off", ov.off},
        {"scrub_on", ov.on}}) {
    PrintLine("%12s %12llu %14.2f %16llu %18.0f", label,
              (unsigned long long)r.applied, r.host_seconds * 1e3,
              (unsigned long long)r.blocks_scanned, r.applies_per_host_sec);
  }
  PrintRule();
  PrintLine("replication results identical: %s   host overhead: %.2f%% "
            "(acceptance: < 2%%)",
            ov.identical ? "yes" : "NO", ov.overhead_pct);
  ZB_CHECK(ov.identical);  // Scrub must not perturb clean replication.

  PrintTitle("E15b: time to detect + repair vs corruption burden "
             "(4096-block pair, 16-block extents, silent secondary rot)");
  PrintLine("%10s %12s %12s %10s %14s %10s", "extents", "detect_ms",
            "repair_ms", "repairs", "resync_blocks", "bad_reads");
  PrintRule();
  std::vector<RepairCell> sweep = RunRepairSweep(quick);
  for (const RepairCell& c : sweep) {
    PrintLine("%10d %12.2f %12.2f %10llu %14llu %10llu", c.corrupted_extents,
              c.detect_ms, c.repair_ms,
              (unsigned long long)c.repairs_scheduled,
              (unsigned long long)c.resync_blocks,
              (unsigned long long)c.bad_reads);
  }
  PrintRule();

  WriteJson(out_path, quick, ov, sweep);
  PrintLine("wrote %s", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace zerobak::bench

int main(int argc, char** argv) {
  zerobak::SetLogLevel(zerobak::LogLevel::kError);
  bool quick = false;
  std::string out_path = "BENCH_scrub.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }
  return zerobak::bench::Run(quick, out_path);
}
