// E2 — "Collapsed backup data" (Section I example, Section III-A-1 fix).
//
// Regenerates the consistency comparison: the fraction of disaster drills
// whose recovered backup is business-inconsistent (orders without stock
// movements), for per-volume ADC vs consistency-group ADC, swept over the
// workload intensity and the link jitter. Expected shape: the consistency
// group is collapse-free in every cell; per-volume ADC collapses with a
// probability that rises with rate and jitter.
#include "bench/bench_util.h"
#include "common/rng.h"

namespace zerobak::bench {
namespace {

struct SweepResult {
  int trials = 0;
  int collapsed = 0;
  uint64_t total_orphans = 0;
  uint64_t total_recovered = 0;
  uint64_t total_placed = 0;
};

SweepResult RunSweep(bool per_volume, SimDuration jitter,
                     SimDuration max_gap, int trials) {
  SweepResult sweep;
  for (int trial = 0; trial < trials; ++trial) {
    const uint64_t seed = 1000 + static_cast<uint64_t>(trial);
    sim::SimEnvironment env;
    core::DemoSystemConfig config = FunctionalConfig();
    config.link.base_latency = Milliseconds(2);
    config.link.jitter = jitter;
    config.link.seed = seed * 13 + 7;
    config.nso.per_volume = per_volume;
    core::DemoSystem system(&env, config);
    BusinessProcess bp = DeployBusinessProcess(&system, "shop", seed);
    ZB_CHECK(system.TagNamespaceForBackup("shop").ok());
    ZB_CHECK(system.WaitForBackupConfigured("shop").ok());

    Rng rng(seed);
    for (int i = 0; i < 120; ++i) {
      ZB_CHECK(bp.app->PlaceOrder().ok());
      env.RunFor(static_cast<SimDuration>(
          rng.Uniform(static_cast<uint64_t>(max_gap))));
    }
    system.FailMainSite();
    ZB_CHECK(system.Failover("shop").ok());

    RecoveryOutcome outcome = RecoverOnBackup(&system, "shop");
    ZB_CHECK(outcome.recovered);
    ++sweep.trials;
    if (outcome.report.collapsed()) ++sweep.collapsed;
    sweep.total_orphans += outcome.report.orphan_orders;
    sweep.total_recovered += outcome.orders;
    sweep.total_placed += bp.app->orders_placed();
  }
  return sweep;
}

void Run() {
  const int kTrials = 20;
  PrintTitle(
      "E2: collapsed-backup probability after a mid-replication disaster "
      "(per-volume ADC vs consistency group)");
  PrintLine("%10s %12s %12s %12s %12s %14s", "jitter_ms", "txn_gap_us",
            "mode", "collapsed", "orphans", "recovered_avg");
  PrintRule();
  for (SimDuration jitter :
       {Milliseconds(1), Milliseconds(3), Milliseconds(6),
        Milliseconds(12)}) {
    for (SimDuration gap : {Microseconds(150), Microseconds(400)}) {
      for (bool per_volume : {true, false}) {
        SweepResult r = RunSweep(per_volume, jitter, gap, kTrials);
        PrintLine("%10.1f %12.0f %12s %6d/%-5d %12llu %14.1f",
                  ToMilliseconds(jitter), ToMicroseconds(gap),
                  per_volume ? "per-volume" : "CG", r.collapsed, r.trials,
                  static_cast<unsigned long long>(r.total_orphans),
                  static_cast<double>(r.total_recovered) / r.trials);
      }
    }
    PrintRule();
  }
  PrintLine("Expected shape: CG rows show 0 collapsed in every cell; "
            "per-volume rows collapse increasingly often as jitter grows "
            "and transaction gaps shrink.");

  // The three-resource variant (Section I: inventory AND payment
  // databases): one more volume in the chain gives per-volume ADC a
  // second seam to tear.
  PrintTitle(
      "E2b: same drill with the three-resource business process "
      "(stock -> payments -> sales)");
  PrintLine("%12s %12s %12s %14s", "mode", "collapsed", "orphans",
            "unpaid_orders");
  PrintRule();
  for (bool per_volume : {true, false}) {
    int collapsed = 0;
    uint64_t orphans = 0, unpaid = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      const uint64_t seed = 3000 + static_cast<uint64_t>(trial);
      sim::SimEnvironment env;
      core::DemoSystemConfig config = FunctionalConfig();
      config.link.base_latency = Milliseconds(2);
      config.link.jitter = Milliseconds(6);
      config.link.seed = seed * 5 + 3;
      config.nso.per_volume = per_volume;
      core::DemoSystem system(&env, config);
      ThreeDbBusinessProcess bp =
          DeployThreeDbBusinessProcess(&system, "shop", seed);
      ZB_CHECK(system.TagNamespaceForBackup("shop").ok());
      ZB_CHECK(system.WaitForBackupConfigured("shop").ok());
      Rng rng(seed);
      for (int i = 0; i < 120; ++i) {
        ZB_CHECK(bp.app->PlaceOrder().ok());
        env.RunFor(
            static_cast<SimDuration>(rng.Uniform(Microseconds(250))));
      }
      system.FailMainSite();
      ZB_CHECK(system.Failover("shop").ok());
      RecoveryOutcome outcome = RecoverThreeDbOnBackup(&system, "shop");
      ZB_CHECK(outcome.recovered);
      if (outcome.report.collapsed()) ++collapsed;
      orphans += outcome.report.orphan_orders;
      unpaid += outcome.report.orders_without_payment;
    }
    PrintLine("%12s %6d/%-5d %12llu %14llu",
              per_volume ? "per-volume" : "CG", collapsed, kTrials,
              static_cast<unsigned long long>(orphans),
              static_cast<unsigned long long>(unpaid));
  }
  PrintRule();
  PrintLine("Expected shape: the CG still never collapses with three "
            "volumes; per-volume ADC collapses at least as often as with "
            "two.");
}

}  // namespace
}  // namespace zerobak::bench

int main() {
  zerobak::SetLogLevel(zerobak::LogLevel::kError); zerobak::bench::Run(); }
