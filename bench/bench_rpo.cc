// E6 — Disaster recovery with bounded loss (Section I, refs [6][7]).
//
// Regenerates the RPO table: committed-but-lost transactions and the
// recovery-point age after a main-site disaster, swept over the
// inter-site delay and the journal capacity. SDC is the zero-loss
// baseline (at the latency cost measured by E1). An undersized journal
// overflows, suspends the group and inflates the loss to everything
// written since — the classic ADC failure mode.
#include "bench/bench_util.h"
#include "common/rng.h"

namespace zerobak::bench {
namespace {

struct RpoResult {
  uint64_t placed = 0;
  uint64_t recovered = 0;
  double rpo_ms = 0;
  bool overflowed = false;
  bool consistent = false;
};

RpoResult RunCell(SimDuration one_way, uint64_t journal_bytes,
                  uint64_t seed) {
  sim::SimEnvironment env;
  core::DemoSystemConfig config = FunctionalConfig();
  config.link.base_latency = one_way;
  config.link.jitter = one_way / 10;
  config.link.seed = seed;
  config.nso.journal_capacity_bytes =
      static_cast<int64_t>(journal_bytes);
  core::DemoSystem system(&env, config);
  BusinessProcess bp = DeployBusinessProcess(&system, "shop", seed);
  ZB_CHECK(system.TagNamespaceForBackup("shop").ok());
  ZB_CHECK(system.WaitForBackupConfigured("shop").ok());

  Rng rng(seed);
  for (int i = 0; i < 300; ++i) {
    ZB_CHECK(bp.app->PlaceOrder().ok());
    env.RunFor(static_cast<SimDuration>(rng.Uniform(Microseconds(250))));
  }
  const SimTime crash_time = env.now();
  system.FailMainSite();

  auto group = system.ReplicationGroupOf("shop");
  ZB_CHECK(group.ok());
  auto stats = system.replication()->GetGroupStats(*group);
  auto report = system.Failover("shop");
  ZB_CHECK(report.ok());

  RpoResult result;
  result.placed = bp.app->orders_placed();
  result.overflowed = stats.ok() && stats->journal_overflows > 0;
  result.rpo_ms = ToMilliseconds(crash_time - report->recovery_point_time);
  RecoveryOutcome outcome = RecoverOnBackup(&system, "shop");
  result.recovered = outcome.orders;
  result.consistent = outcome.recovered && !outcome.report.collapsed();
  return result;
}

void Run() {
  PrintTitle(
      "E6: recovery point after a main-site disaster vs link delay and "
      "journal capacity (ADC; SDC baseline has RPO=0 at E1's latency "
      "cost)");
  PrintLine("%12s %14s %10s %12s %10s %10s %12s", "one_way_ms",
            "journal", "placed", "recovered", "lost", "rpo_ms",
            "state");
  PrintRule();
  struct JournalSize {
    const char* label;
    uint64_t bytes;
  };
  const JournalSize sizes[] = {{"256KiB", 256ull << 10},
                               {"2MiB", 2ull << 20},
                               {"64MiB", 64ull << 20}};
  for (SimDuration delay : {Milliseconds(1), Milliseconds(5),
                            Milliseconds(15), Milliseconds(40)}) {
    for (const JournalSize& size : sizes) {
      RpoResult r = RunCell(delay, size.bytes, 77);
      PrintLine("%12.1f %14s %10llu %12llu %10llu %10.1f %12s",
                ToMilliseconds(delay), size.label,
                static_cast<unsigned long long>(r.placed),
                static_cast<unsigned long long>(r.recovered),
                static_cast<unsigned long long>(r.placed - r.recovered),
                r.rpo_ms,
                r.overflowed
                    ? "OVERFLOW"
                    : (r.consistent ? "consistent" : "COLLAPSED"));
    }
    PrintRule();
  }
  PrintLine("Expected shape: loss and RPO grow with link delay; an "
            "undersized journal overflows and loses everything since the "
            "suspension; every recovered image is consistent (CG).");
}

}  // namespace
}  // namespace zerobak::bench

int main() {
  zerobak::SetLogLevel(zerobak::LogLevel::kError); zerobak::bench::Run(); }
