// E3 — Backup configuration step (Figs. 3-4, Section III-B).
//
// Regenerates the operator-automation comparison: how many user actions
// and how much time it takes to protect a namespace with N volumes,
// (a) manually on the storage console vs (b) by tagging the namespace and
// letting the namespace operator + storage plugins do the work. Also
// verifies the Fig. 4 observable: PVs appear on the backup site.
//
// Manual-step model (per the configuration guides the paper cites):
//   fixed:      create journal volumes (2), create the consistency group
//               (1), verify pair states (1)                     =  4
//   per volume: look up PVC->PV->array volume (2), create the secondary
//               volume (1), create the pair in the group (1)    =  4
#include "bench/bench_util.h"

namespace zerobak::bench {
namespace {

struct OperatorResult {
  int volumes = 0;
  uint64_t manual_steps = 0;
  uint64_t nso_actions = 0;       // Always 1: the tag.
  double config_ms = 0;           // Tag -> fully replicating.
  uint64_t api_writes = 0;        // Writes the automation performed.
  size_t backup_pvs = 0;          // Fig. 4: PVs visible on backup site.
};

OperatorResult RunCell(int volumes) {
  sim::SimEnvironment env;
  core::DemoSystemConfig config = FunctionalConfig();
  config.link.base_latency = Milliseconds(2);
  config.link.jitter = 0;
  core::DemoSystem system(&env, config);

  ZB_CHECK(system.CreateBusinessNamespace("shop").ok());
  for (int i = 0; i < volumes; ++i) {
    ZB_CHECK(system.CreatePvc("shop", "db-" + std::to_string(i), 1 << 20)
                 .ok());
  }
  env.RunFor(Milliseconds(20));  // Provisioner binds everything.

  const uint64_t writes_before =
      system.main_site()->api()->writes() +
      system.backup_site()->api()->writes();
  const SimTime tag_time = env.now();
  ZB_CHECK(system.TagNamespaceForBackup("shop").ok());
  ZB_CHECK(system.WaitForBackupConfigured("shop", Seconds(120)).ok());

  OperatorResult result;
  result.volumes = volumes;
  result.manual_steps = 4 + 4ull * static_cast<uint64_t>(volumes);
  result.nso_actions = 1;
  result.config_ms = ToMilliseconds(env.now() - tag_time);
  result.api_writes = system.main_site()->api()->writes() +
                      system.backup_site()->api()->writes() -
                      writes_before;
  result.backup_pvs = system.backup_site()
                          ->api()
                          ->List(container::kKindPersistentVolume)
                          .size();
  return result;
}

void Run() {
  PrintTitle(
      "E3: backup-configuration effort vs number of volumes in the "
      "namespace (manual console model vs namespace operator)");
  PrintLine("%8s %14s %12s %12s %12s %12s", "volumes", "manual_steps",
            "nso_actions", "config_ms", "api_writes", "backup_pvs");
  PrintRule();
  for (int volumes : {1, 2, 4, 8, 16, 32, 64, 128}) {
    OperatorResult r = RunCell(volumes);
    PrintLine("%8d %14llu %12llu %12.1f %12llu %12zu", r.volumes,
              static_cast<unsigned long long>(r.manual_steps),
              static_cast<unsigned long long>(r.nso_actions), r.config_ms,
              static_cast<unsigned long long>(r.api_writes), r.backup_pvs);
  }
  PrintRule();
  PrintLine("Expected shape: manual steps grow ~4/volume; the operator "
            "needs exactly 1 user action at every scale, and every "
            "protected volume surfaces as a PV on the backup site "
            "(Fig. 4).");
}

}  // namespace
}  // namespace zerobak::bench

int main() {
  zerobak::SetLogLevel(zerobak::LogLevel::kError); zerobak::bench::Run(); }
