// E4 — Snapshot development step (Fig. 5, Section III-A-2).
//
// Three sub-experiments:
//   (a) snapshot-group creation cost vs group size — metadata-only, no
//       data copied at creation time;
//   (b) copy-on-write overhead on the write path vs number of attached
//       snapshots;
//   (c) snapshot *group* vs sequential per-volume snapshots taken under a
//       running workload: only the group yields a cross-database
//       consistent image.
#include <chrono>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "snapshot/snapshot.h"

namespace zerobak::bench {
namespace {

double WallMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void RunCreationCost() {
  PrintTitle("E4a: snapshot-group creation cost vs group size");
  PrintLine("%10s %14s %16s %16s", "volumes", "create_wall_ms",
            "blocks_copied", "per_volume_us");
  PrintRule();
  for (int volumes : {1, 4, 16, 64, 256}) {
    sim::SimEnvironment env;
    storage::ArrayConfig cfg;
    cfg.media = block::DeviceLatencyModel{0, 0, 0, 0, 1};
    storage::StorageArray array(&env, cfg);
    snapshot::SnapshotManager snapshots(&array);
    std::vector<storage::VolumeId> vols;
    for (int i = 0; i < volumes; ++i) {
      auto v = array.CreateVolume("v" + std::to_string(i), 1 << 14);
      ZB_CHECK(v.ok());
      // Pre-populate so a copying implementation would be caught.
      for (int b = 0; b < 64; ++b) {
        ZB_CHECK(array
                     .WriteSync(*v, b,
                                std::string(block::kDefaultBlockSize, 'd'))
                     .ok());
      }
      vols.push_back(*v);
    }
    const auto start = std::chrono::steady_clock::now();
    auto group = snapshots.CreateSnapshotGroup(vols, "g");
    const double wall_ms = WallMs(start);
    ZB_CHECK(group.ok());
    uint64_t copied = 0;
    auto info = snapshots.GetGroup(*group);
    ZB_CHECK(info.ok());
    for (auto sid : info->members) {
      copied += snapshots.GetSnapshot(sid)->preserved_blocks();
    }
    PrintLine("%10d %14.3f %16llu %16.2f", volumes, wall_ms,
              static_cast<unsigned long long>(copied),
              wall_ms * 1000.0 / volumes);
  }
  PrintRule();
  PrintLine("Expected shape: creation is metadata-only (0 blocks copied) "
            "and linear-in-members with a tiny constant.");
}

void RunCowOverhead() {
  PrintTitle("E4b: write-path copy-on-write overhead vs attached snapshots");
  PrintLine("%12s %14s %16s %16s", "snapshots", "write_wall_ms",
            "preserved_blks", "overhead_vs_0");
  PrintRule();
  const int kWrites = 20000;
  double baseline_ms = 0;
  for (int snaps : {0, 1, 2, 4, 8}) {
    sim::SimEnvironment env;
    storage::ArrayConfig cfg;
    cfg.media = block::DeviceLatencyModel{0, 0, 0, 0, 1};
    storage::StorageArray array(&env, cfg);
    snapshot::SnapshotManager snapshots(&array);
    auto v = array.CreateVolume("v", 1 << 14);
    ZB_CHECK(v.ok());
    // Warm the volume so every COW has an old block to preserve.
    for (int b = 0; b < 1 << 12; ++b) {
      ZB_CHECK(array
                   .WriteSync(*v, b,
                              std::string(block::kDefaultBlockSize, 'w'))
                   .ok());
    }
    std::vector<snapshot::SnapshotId> ids;
    for (int s = 0; s < snaps; ++s) {
      auto id = snapshots.CreateSnapshot(*v, "s" + std::to_string(s));
      ZB_CHECK(id.ok());
      ids.push_back(*id);
    }
    Rng rng(9);
    const std::string payload(block::kDefaultBlockSize, 'x');
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kWrites; ++i) {
      ZB_CHECK(array.WriteSync(*v, rng.Uniform(1 << 12), payload).ok());
    }
    const double wall_ms = WallMs(start);
    if (snaps == 0) baseline_ms = wall_ms;
    uint64_t preserved = 0;
    for (auto id : ids) {
      preserved += snapshots.GetSnapshot(id)->preserved_blocks();
    }
    PrintLine("%12d %14.1f %16llu %15.2fx", snaps, wall_ms,
              static_cast<unsigned long long>(preserved),
              wall_ms / baseline_ms);
  }
  PrintRule();
  PrintLine("Expected shape: modest overhead growing with snapshot count "
            "(each first-overwrite preserves one block per snapshot).");
}

void RunGroupVsSequential() {
  PrintTitle(
      "E4c: consistency of backup-site snapshots taken under load — "
      "atomic group vs sequential per-volume snapshots");
  PrintLine("%18s %12s %12s %12s", "snap_gap_ms", "mode", "collapsed",
            "orphans");
  PrintRule();
  const int kTrials = 12;
  for (SimDuration gap :
       {SimDuration{0}, Milliseconds(2), Milliseconds(10),
        Milliseconds(40)}) {
    int collapsed = 0;
    uint64_t orphans = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      const uint64_t seed = 500 + static_cast<uint64_t>(trial);
      sim::SimEnvironment env;
      core::DemoSystemConfig config = FunctionalConfig();
      config.link.base_latency = Milliseconds(2);
      config.link.jitter = Milliseconds(1);
      config.link.seed = seed;
      core::DemoSystem system(&env, config);
      BusinessProcess bp = DeployBusinessProcess(&system, "shop", seed);
      ZB_CHECK(system.TagNamespaceForBackup("shop").ok());
      ZB_CHECK(system.WaitForBackupConfigured("shop").ok());

      // Keep the business running while snapshots are taken.
      Rng rng(seed);
      auto pump_orders = [&](SimDuration duration) {
        const SimTime until = env.now() + duration;
        while (env.now() < until) {
          ZB_CHECK(bp.app->PlaceOrder().ok());
          env.RunFor(static_cast<SimDuration>(
              rng.Uniform(Microseconds(250)) + 1));
        }
      };
      pump_orders(Milliseconds(30));

      auto b_sales = system.ResolveBackupVolume("shop", "sales-db");
      auto b_stock = system.ResolveBackupVolume("shop", "stock-db");
      ZB_CHECK(b_sales.ok() && b_stock.ok());
      auto* snapshots = system.backup_site()->snapshots();

      snapshot::CowSnapshot* stock_snap = nullptr;
      snapshot::CowSnapshot* sales_snap = nullptr;
      if (gap == 0) {
        // The storage system's snapshot-group feature: one atomic event.
        auto group =
            snapshots->CreateSnapshotGroup({*b_sales, *b_stock}, "g");
        ZB_CHECK(group.ok());
        auto info = snapshots->GetGroup(*group);
        sales_snap = snapshots->GetSnapshot(info->members[0]);
        stock_snap = snapshots->GetSnapshot(info->members[1]);
      } else {
        // Sequential console operations with business load in between —
        // stock first, sales later, so the sales image can run ahead.
        auto s1 = snapshots->CreateSnapshot(*b_stock, "stock-snap");
        ZB_CHECK(s1.ok());
        pump_orders(gap);
        auto s2 = snapshots->CreateSnapshot(*b_sales, "sales-snap");
        ZB_CHECK(s2.ok());
        stock_snap = snapshots->GetSnapshot(*s1);
        sales_snap = snapshots->GetSnapshot(*s2);
      }

      auto sales_db = db::MiniDb::Open(sales_snap, BenchDbOptions());
      auto stock_db = db::MiniDb::Open(stock_snap, BenchDbOptions());
      ZB_CHECK(sales_db.ok() && stock_db.ok());
      auto report =
          workload::CheckConsistency(sales_db->get(), stock_db->get());
      if (report.collapsed()) ++collapsed;
      orphans += report.orphan_orders;
    }
    PrintLine("%18s %12s %6d/%-5d %12llu",
              gap == 0 ? "atomic" : FormatDuration(gap).c_str(),
              gap == 0 ? "group" : "sequential", collapsed, kTrials,
              static_cast<unsigned long long>(orphans));
  }
  PrintRule();
  PrintLine("Expected shape: the atomic snapshot group is always "
            "consistent; sequential snapshots collapse with probability "
            "growing in the gap.");
}

}  // namespace
}  // namespace zerobak::bench

int main() {
  zerobak::SetLogLevel(zerobak::LogLevel::kError);
  zerobak::bench::RunCreationCost();
  zerobak::bench::RunCowOverhead();
  zerobak::bench::RunGroupVsSequential();
}
