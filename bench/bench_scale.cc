// E13 — Thousand-group scale: what the event-driven GroupScheduler buys
// over the legacy per-group transfer timers.
//
// The scenario mirrors a consolidation array: up to 1024 consistency
// groups configured, of which only a handful (8) carry traffic at any
// moment. The legacy engine polls every group every transfer_interval, so
// the simulator burns events proportional to *configured* groups; the
// scheduler arms a group only when its journal has something to ship, so
// idle groups cost nothing beyond a slow shared heartbeat.
//
// Reported per (group count, engine mode) cell, busy load held constant:
//   - simulator events per simulated second (the scale metric),
//   - records applied per simulated second on the busy groups (the
//     equal-work control: both engines must do the same replication),
//   - max/min wire-bytes ratio across the busy groups sharing the
//     inter-site link (deficit-round-robin fairness).
//
// Acceptance (checked at the 1024-group cell, >= 1016 idle):
//   - scheduler events/s <= 1/10 of the legacy engine's,
//   - busy-group applies within 10% of the legacy engine's,
//   - fairness ratio <= 1.25,
//   - bit-identical events/applies when a seed is re-run.
//
// Writes the results as JSON (default BENCH_scale.json; --out PATH to
// override). --quick shrinks the sweep durations for the ctest smoke run.
#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "replication/replication.h"

namespace zerobak::bench {
namespace {

constexpr uint64_t kBusyGroups = 8;
constexpr uint64_t kBlocksPerVolume = 64;
constexpr double kWritesPerBusyGroup = 250.0;  // Host writes/s per busy group.

struct ScaleCell {
  uint64_t groups = 0;
  uint64_t busy = 0;
  bool event_driven = false;
  uint64_t seed = 0;
  uint64_t events = 0;           // Simulator events in the measure window.
  double sim_seconds = 0;
  double events_per_sim_sec = 0;
  uint64_t applied = 0;          // Records applied on busy groups.
  double applies_per_sim_sec = 0;
  double fairness_ratio = 0;     // max/min wire bytes across busy groups.
  uint64_t sched_dispatches = 0;
  uint64_t sched_heartbeat_rescues = 0;
};

struct ScaleRig {
  std::unique_ptr<sim::SimEnvironment> env;
  std::unique_ptr<storage::StorageArray> main;
  std::unique_ptr<storage::StorageArray> backup;
  std::unique_ptr<sim::NetworkLink> fwd;
  std::unique_ptr<sim::NetworkLink> rev;
  std::unique_ptr<replication::ReplicationEngine> engine;
  std::vector<replication::GroupId> groups;
  std::vector<storage::VolumeId> pvols;
};

ScaleRig MakeRig(uint64_t n_groups, bool event_driven, uint64_t seed) {
  ScaleRig rig;
  rig.env = std::make_unique<sim::SimEnvironment>();
  storage::ArrayConfig zero;
  zero.media = block::DeviceLatencyModel{0, 0, 0, 0, 1};
  storage::ArrayConfig main_cfg = zero;
  main_cfg.serial = "MAIN";
  storage::ArrayConfig backup_cfg = zero;
  backup_cfg.serial = "BKUP";
  rig.main = std::make_unique<storage::StorageArray>(rig.env.get(), main_cfg);
  rig.backup =
      std::make_unique<storage::StorageArray>(rig.env.get(), backup_cfg);
  sim::NetworkLinkConfig link_cfg;
  link_cfg.base_latency = Milliseconds(1);
  link_cfg.jitter = 0;
  // 25 MB/s: above the steady offered load, so queueing is transient and
  // every written record applies inside the window in both engine modes.
  link_cfg.bandwidth_bytes_per_sec = 2.5e7;
  link_cfg.seed = seed * 31 + 1;
  rig.fwd = std::make_unique<sim::NetworkLink>(rig.env.get(), link_cfg, "fwd");
  sim::NetworkLinkConfig rev_cfg = link_cfg;
  rev_cfg.seed = seed * 31 + 2;
  rig.rev = std::make_unique<sim::NetworkLink>(rig.env.get(), rev_cfg, "rev");
  replication::EngineOptions opts;
  opts.event_driven_scheduler = event_driven;
  rig.engine = std::make_unique<replication::ReplicationEngine>(
      rig.env.get(), rig.main.get(), rig.backup.get(), rig.fwd.get(),
      rig.rev.get(), opts);

  for (uint64_t g = 0; g < n_groups; ++g) {
    replication::ConsistencyGroupConfig cg;
    cg.name = "cg" + std::to_string(g);
    cg.journal_capacity_bytes = 4ull << 20;
    cg.transfer_interval = Milliseconds(2);
    // Fixed batches: every busy group carries the same quantum, so the
    // fairness ratio isolates the dispatcher rather than adaptive sizing.
    cg.enable_adaptive_batching = false;
    cg.transfer_batch_bytes = 256ull << 10;
    auto group = rig.engine->CreateConsistencyGroup(cg);
    ZB_CHECK(group.ok());
    auto p = rig.main->CreateVolume("p" + std::to_string(g),
                                    kBlocksPerVolume);
    auto s = rig.backup->CreateVolume("s" + std::to_string(g),
                                      kBlocksPerVolume);
    ZB_CHECK(p.ok() && s.ok());
    replication::PairConfig pc;
    pc.primary = *p;
    pc.secondary = *s;
    pc.mode = replication::ReplicationMode::kAsynchronous;
    pc.group = *group;
    ZB_CHECK(rig.engine->CreatePair(pc).ok());
    rig.groups.push_back(*group);
    rig.pvols.push_back(*p);
  }
  rig.env->RunFor(Milliseconds(20));  // Empty initial copies settle.
  return rig;
}

ScaleCell RunCell(uint64_t n_groups, bool event_driven, uint64_t seed,
                  bool quick) {
  const uint64_t busy = std::min<uint64_t>(kBusyGroups, n_groups);
  const SimDuration warmup = Milliseconds(50);
  const SimDuration measure = quick ? Milliseconds(200) : Milliseconds(600);

  ScaleRig rig = MakeRig(n_groups, event_driven, seed);
  Rng rng(seed);
  const std::string payload(block::kDefaultBlockSize, 'e');
  const auto period =
      static_cast<SimDuration>(kSecond / (kWritesPerBusyGroup * busy));
  uint64_t turn = 0;
  auto write_one = [&] {
    const uint64_t g = turn++ % busy;
    const uint64_t lba = rng.Uniform(kBlocksPerVolume);
    ZB_CHECK(rig.main->WriteSync(rig.pvols[g], lba, payload).ok());
  };

  const SimTime warm_until = rig.env->now() + warmup;
  while (rig.env->now() < warm_until) {
    write_one();
    rig.env->RunFor(period);
  }

  std::vector<uint64_t> wire_before(busy);
  std::vector<uint64_t> applied_before(busy);
  for (uint64_t g = 0; g < busy; ++g) {
    auto stats = rig.engine->GetGroupStats(rig.groups[g]);
    ZB_CHECK(stats.ok());
    wire_before[g] = stats->wire_bytes_shipped;
    applied_before[g] = stats->applied;
  }
  const uint64_t events_before = rig.env->executed_events();
  const SimTime t0 = rig.env->now();

  const SimTime until = rig.env->now() + measure;
  while (rig.env->now() < until) {
    write_one();
    rig.env->RunFor(period);
  }
  rig.env->RunFor(Milliseconds(20));  // Drain in-flight batches and acks.

  ScaleCell cell;
  cell.groups = n_groups;
  cell.busy = busy;
  cell.event_driven = event_driven;
  cell.seed = seed;
  cell.events = rig.env->executed_events() - events_before;
  cell.sim_seconds =
      static_cast<double>(rig.env->now() - t0) / static_cast<double>(kSecond);
  cell.events_per_sim_sec = static_cast<double>(cell.events) / cell.sim_seconds;
  uint64_t wire_min = UINT64_MAX;
  uint64_t wire_max = 0;
  for (uint64_t g = 0; g < busy; ++g) {
    auto stats = rig.engine->GetGroupStats(rig.groups[g]);
    ZB_CHECK(stats.ok());
    ZB_CHECK(!stats->suspended);
    ZB_CHECK(stats->journal_overflows == 0);
    cell.applied += stats->applied - applied_before[g];
    const uint64_t wire = stats->wire_bytes_shipped - wire_before[g];
    wire_min = std::min(wire_min, wire);
    wire_max = std::max(wire_max, wire);
  }
  cell.applies_per_sim_sec =
      static_cast<double>(cell.applied) / cell.sim_seconds;
  cell.fairness_ratio =
      wire_min == 0 ? 0.0
                    : static_cast<double>(wire_max) /
                          static_cast<double>(wire_min);
  const auto sched = rig.engine->scheduler_stats();
  cell.sched_dispatches = sched.dispatches;
  cell.sched_heartbeat_rescues = sched.heartbeat_rescues;
  return cell;
}

void WriteJson(const std::string& path, bool quick,
               const std::vector<ScaleCell>& cells, double event_reduction,
               double apply_parity, bool reproducible) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  ZB_CHECK(f != nullptr);
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"bench_scale\",\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(f, "  \"cells\": [\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    const ScaleCell& c = cells[i];
    std::fprintf(
        f,
        "    {\"groups\": %llu, \"busy\": %llu, \"mode\": \"%s\", "
        "\"seed\": %llu, \"events\": %llu, \"sim_seconds\": %.4f, "
        "\"events_per_sim_sec\": %.0f, \"applied\": %llu, "
        "\"applies_per_sim_sec\": %.0f, \"fairness_ratio\": %.4f, "
        "\"sched_dispatches\": %llu, \"heartbeat_rescues\": %llu}%s\n",
        (unsigned long long)c.groups, (unsigned long long)c.busy,
        c.event_driven ? "scheduler" : "legacy-timers",
        (unsigned long long)c.seed, (unsigned long long)c.events,
        c.sim_seconds, c.events_per_sim_sec, (unsigned long long)c.applied,
        c.applies_per_sim_sec, c.fairness_ratio,
        (unsigned long long)c.sched_dispatches,
        (unsigned long long)c.sched_heartbeat_rescues,
        i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"acceptance\": {\n");
  std::fprintf(f, "    \"event_reduction_at_1024\": %.2f,\n",
               event_reduction);
  std::fprintf(f, "    \"apply_parity_at_1024\": %.4f,\n", apply_parity);
  std::fprintf(f, "    \"seed_rerun_identical\": %s\n",
               reproducible ? "true" : "false");
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
}

int Run(bool quick, const std::string& out_path) {
  PrintTitle("E13: simulator event rate vs configured group count "
             "(8 busy groups at 250 writes/s each; the rest idle)");
  PrintLine("%8s %16s %8s %16s %16s %10s", "groups", "mode", "idle",
            "events_per_s", "applies_per_s", "fairness");
  PrintRule();

  const std::vector<uint64_t> sweep = {1, 8, 64, 256, 1024};
  std::vector<ScaleCell> cells;
  double event_reduction = 0;
  double apply_parity = 0;
  for (uint64_t n : sweep) {
    ScaleCell legacy = RunCell(n, /*event_driven=*/false, /*seed=*/1, quick);
    ScaleCell sched = RunCell(n, /*event_driven=*/true, /*seed=*/1, quick);
    for (const ScaleCell& c : {legacy, sched}) {
      PrintLine("%8llu %16s %8llu %16.0f %16.0f %10.3f",
                (unsigned long long)c.groups,
                c.event_driven ? "scheduler" : "legacy-timers",
                (unsigned long long)(c.groups - c.busy), c.events_per_sim_sec,
                c.applies_per_sim_sec, c.fairness_ratio);
    }
    cells.push_back(legacy);
    cells.push_back(sched);
    if (n == 1024) {
      event_reduction = legacy.events_per_sim_sec / sched.events_per_sim_sec;
      apply_parity = sched.applies_per_sim_sec / legacy.applies_per_sim_sec;
    }
  }
  PrintRule();

  // Determinism: the scheduler must not cost the sim its reproducibility.
  const ScaleCell a = RunCell(1024, /*event_driven=*/true, /*seed=*/2, quick);
  const ScaleCell b = RunCell(1024, /*event_driven=*/true, /*seed=*/2, quick);
  const bool reproducible = a.events == b.events && a.applied == b.applied &&
                            a.fairness_ratio == b.fairness_ratio;

  PrintLine("1024-group event reduction: %.1fx (acceptance: >= 10x)   "
            "apply parity: %.3f (acceptance: 0.9..1.1)",
            event_reduction, apply_parity);
  PrintLine("busy-group fairness: %.3f (acceptance: <= 1.25)   "
            "seed re-run identical: %s",
            cells.back().fairness_ratio, reproducible ? "yes" : "NO");
  ZB_CHECK(event_reduction >= 10.0);
  ZB_CHECK(apply_parity >= 0.9 && apply_parity <= 1.1);
  ZB_CHECK(cells.back().fairness_ratio > 0 &&
           cells.back().fairness_ratio <= 1.25);
  ZB_CHECK(reproducible);

  WriteJson(out_path, quick, cells, event_reduction, apply_parity,
            reproducible);
  PrintLine("wrote %s", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace zerobak::bench

int main(int argc, char** argv) {
  zerobak::SetLogLevel(zerobak::LogLevel::kError);
  bool quick = false;
  std::string out_path = "BENCH_scale.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }
  return zerobak::bench::Run(quick, out_path);
}
