// E10/E11 — Transfer pipeline benches: what the coalescing machinery
// (DESIGN.md section 3c) and the wire format (section 3d) actually buy on
// the wire and in CPU.
//
//   E10a Skewed-overwrite workload (hot 10% of blocks takes 90% of the
//        writes): bytes shipped (journal-logical and framed wire), fold
//        ratio, steady-state journal depth and apply throughput with
//        write-folding on vs off, at the same host write rate.
//   E10b Resync of a 25%-dirty volume: extent-merged transfer vs the
//        per-block transfer the old unordered-set engine performed (one
//        record, one heap string and one secondary write per block, in
//        hash-table iteration order). Volumes use 512 B sectors — the
//        granularity storage arrays address LBAs at — so per-record
//        overhead is visible next to the memcpy, which is exactly the
//        cost extent merging amortizes. The dirty set is 16-sector runs
//        scattered across a 1 GiB volume — the shape a suspended OLTP
//        workload leaves behind — so the baseline's random single-block
//        access also pays its locality cost while runs still merge into
//        extents. Extent capture is zero-copy (slab views under
//        pre-overwrite COW protection), so the pipeline moves each byte
//        once where the old loop moved it twice with per-record overhead
//        on top. Reported in host CPU time — the simulated wire carries
//        almost the same bytes either way.
//
//   E11  Wire-format shipping under a bandwidth-constrained (100 Mbit/s)
//        inter-site link, driven by real database workloads (the
//        e-commerce order flow and the KV mix) whose WAL pages are what
//        the compressor actually sees. Reports logical vs framed wire
//        bytes, compression ratio, applies/s and the apply-lag RPO
//        estimate for the compression x write-folding ablation.
//
// Writes the results as JSON (default BENCH_pipeline.json; --out PATH to
// override). --quick shrinks volumes and durations for the ctest smoke
// run; --wire-only runs just E11 (the bench_wire_smoke ctest entry); the
// committed JSON comes from the full run via scripts/run_benches.sh.
#include <algorithm>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "replication/replication.h"
#include "workload/kv_workload.h"

namespace zerobak::bench {
namespace {

struct Rig {
  std::unique_ptr<sim::SimEnvironment> env;
  std::unique_ptr<storage::StorageArray> main;
  std::unique_ptr<storage::StorageArray> backup;
  std::unique_ptr<sim::NetworkLink> fwd;
  std::unique_ptr<sim::NetworkLink> rev;
  std::unique_ptr<replication::ReplicationEngine> engine;
};

Rig MakeRig(double bandwidth_bytes_per_sec) {
  Rig rig;
  rig.env = std::make_unique<sim::SimEnvironment>();
  storage::ArrayConfig zero;
  zero.media = block::DeviceLatencyModel{0, 0, 0, 0, 1};
  storage::ArrayConfig main_cfg = zero;
  main_cfg.serial = "MAIN";
  storage::ArrayConfig backup_cfg = zero;
  backup_cfg.serial = "BKUP";
  rig.main = std::make_unique<storage::StorageArray>(rig.env.get(),
                                                     main_cfg);
  rig.backup = std::make_unique<storage::StorageArray>(rig.env.get(),
                                                       backup_cfg);
  sim::NetworkLinkConfig link_cfg;
  link_cfg.base_latency = Milliseconds(5);
  link_cfg.jitter = 0;
  link_cfg.bandwidth_bytes_per_sec = bandwidth_bytes_per_sec;
  rig.fwd = std::make_unique<sim::NetworkLink>(rig.env.get(), link_cfg,
                                               "fwd");
  rig.rev = std::make_unique<sim::NetworkLink>(rig.env.get(), link_cfg,
                                               "rev");
  rig.engine = std::make_unique<replication::ReplicationEngine>(
      rig.env.get(), rig.main.get(), rig.backup.get(), rig.fwd.get(),
      rig.rev.get());
  return rig;
}

// ---- E10a: write-folding under skewed overwrites -----------------------------

struct FoldResult {
  uint64_t logical_bytes = 0;       // Journal bytes the frames represent.
  uint64_t wire_bytes = 0;          // Framed (compressed) bytes on the link.
  uint64_t host_bytes = 0;          // Payload bytes the host wrote.
  uint64_t records_folded = 0;
  uint64_t folded_bytes_saved = 0;
  double mean_journal_depth = 0;    // Bytes, sampled each millisecond.
  double apply_throughput = 0;      // Records applied per sim-second.
};

FoldResult RunFoldScenario(bool folding, bool quick) {
  constexpr uint64_t kBlocks = 1024;
  constexpr uint64_t kHot = kBlocks / 10;  // Hot 10% takes 90% of writes.
  constexpr double kRate = 20000.0;        // Host writes per second.
  const SimDuration warmup = quick ? Milliseconds(32) : Milliseconds(160);
  const SimDuration measure = quick ? Milliseconds(96) : Milliseconds(480);

  Rig rig = MakeRig(1.25e8);  // 1 Gbit/s inter-site link.
  auto p = rig.main->CreateVolume("p", kBlocks);
  auto s = rig.backup->CreateVolume("s", kBlocks);
  ZB_CHECK(p.ok() && s.ok());
  replication::ConsistencyGroupConfig cg;
  cg.name = "fold";
  // A 16 ms cycle batches ~320 writes: long enough for the hot set to
  // fold, short enough that the link round trip still dominates lag.
  cg.transfer_interval = Milliseconds(16);
  cg.journal_capacity_bytes = 64ull << 20;
  cg.enable_write_folding = folding;
  auto group = rig.engine->CreateConsistencyGroup(cg);
  ZB_CHECK(group.ok());
  replication::PairConfig pc;
  pc.name = "pair";
  pc.primary = *p;
  pc.secondary = *s;
  pc.mode = replication::ReplicationMode::kAsynchronous;
  pc.group = *group;
  ZB_CHECK(rig.engine->CreatePair(pc).ok());
  rig.env->RunFor(Milliseconds(20));

  Rng rng(17);
  const auto period = static_cast<SimDuration>(kSecond / kRate);
  const std::string payload(block::kDefaultBlockSize, 'w');
  auto next_lba = [&] {
    return rng.Uniform(10) < 9 ? rng.Uniform(kHot)
                               : kHot + rng.Uniform(kBlocks - kHot);
  };

  // Warmup: reach the steady state before the counters start.
  const SimTime warm_until = rig.env->now() + warmup;
  while (rig.env->now() < warm_until) {
    ZB_CHECK(rig.main->WriteSync(*p, next_lba(), payload).ok());
    rig.env->RunFor(period);
  }

  FoldResult res;
  const uint64_t wire_before = rig.fwd->bytes_sent();
  const uint64_t logical_before = rig.fwd->logical_bytes_sent();
  auto before = rig.engine->GetGroupStats(*group);
  ZB_CHECK(before.ok());
  const SimTime t0 = rig.env->now();
  uint64_t samples = 0;
  SimTime next_sample = rig.env->now();
  const SimTime until = rig.env->now() + measure;
  while (rig.env->now() < until) {
    ZB_CHECK(rig.main->WriteSync(*p, next_lba(), payload).ok());
    res.host_bytes += payload.size();
    rig.env->RunFor(period);
    if (rig.env->now() >= next_sample) {
      auto stats = rig.engine->GetGroupStats(*group);
      ZB_CHECK(stats.ok());
      res.mean_journal_depth += double(stats->journal_used_bytes);
      ++samples;
      next_sample += Milliseconds(1);
    }
  }
  auto after = rig.engine->GetGroupStats(*group);
  ZB_CHECK(after.ok());
  res.wire_bytes = rig.fwd->bytes_sent() - wire_before;
  res.logical_bytes = rig.fwd->logical_bytes_sent() - logical_before;
  res.records_folded = after->records_folded - before->records_folded;
  res.folded_bytes_saved =
      after->folded_bytes_saved - before->folded_bytes_saved;
  if (samples > 0) res.mean_journal_depth /= double(samples);
  res.apply_throughput = double(after->applied - before->applied) /
                         (double(rig.env->now() - t0) / double(kSecond));
  return res;
}

// ---- E10b: extent resync vs the per-block (unordered-set era) transfer -----

struct ResyncResult {
  double host_seconds = 0;     // CPU time for capture + apply, all iters.
  double sim_seconds = 0;      // Simulated suspend->converged time.
  uint64_t wire_bytes = 0;
  uint64_t extents = 0;
  uint64_t blocks = 0;
};

// Resync volumes use sector-granular addressing: a storage array tracks
// dirty LBAs at 512 B, not at the journal's 4 KiB record payload size.
constexpr uint32_t kSectorBytes = 512;

// Dirty 25% of the volume as 16-sector runs with 48-sector gaps, spread
// across the whole address space. Both engine modes and the legacy
// baseline use the same pattern.
constexpr uint64_t kDirtyRunBlocks = 16;
constexpr uint64_t kDirtyStride = 64;

template <typename WriteFn>
void WriteDirtyPattern(uint64_t blocks, WriteFn&& write) {
  for (uint64_t base = 0; base + kDirtyRunBlocks <= blocks;
       base += kDirtyStride) {
    for (uint64_t lba = base; lba < base + kDirtyRunBlocks; ++lba) {
      write(lba);
    }
  }
}

ResyncResult RunResyncScenario(bool extents, bool quick) {
  // 1 GiB in the full run: the dirty quarter of source+destination has
  // to overflow the (large) last-level cache, or the baseline's random
  // access order costs nothing.
  const uint64_t kBlocks = quick ? 16384 : 2097152;
  const int iters = quick ? 2 : 10;

  Rig rig = MakeRig(1.25e9);  // 10 Gbit/s: CPU, not wire, is the subject.
  auto p = rig.main->CreateVolume("p", kBlocks, kSectorBytes);
  auto s = rig.backup->CreateVolume("s", kBlocks, kSectorBytes);
  ZB_CHECK(p.ok() && s.ok());
  replication::ConsistencyGroupConfig cg;
  cg.name = "resync";
  cg.journal_capacity_bytes = 256ull << 20;
  cg.enable_extent_resync = extents;
  auto group = rig.engine->CreateConsistencyGroup(cg);
  ZB_CHECK(group.ok());
  replication::PairConfig pc;
  pc.name = "pair";
  pc.primary = *p;
  pc.secondary = *s;
  pc.mode = replication::ReplicationMode::kAsynchronous;
  pc.group = *group;
  auto pair = rig.engine->CreatePair(pc);
  ZB_CHECK(pair.ok());
  rig.env->RunFor(Milliseconds(20));

  ResyncResult res;
  uint64_t wire_before = rig.fwd->bytes_sent();
  // Iteration 0 is an untimed warmup: it pays the first-touch page faults
  // of both volumes' backing chunks, which would otherwise be billed to
  // whichever mode runs first.
  for (int it = 0; it <= iters; ++it) {
    ZB_CHECK(rig.engine->SuspendGroup(*group).ok());
    const std::string payload(kSectorBytes, static_cast<char>('a' + it));
    WriteDirtyPattern(kBlocks, [&](uint64_t lba) {
      ZB_CHECK(rig.main->WriteSync(*p, lba, payload).ok());
    });
    const SimTime sim0 = rig.env->now();
    const auto t0 = std::chrono::steady_clock::now();
    ZB_CHECK(rig.engine->ResyncGroup(*group).ok());
    // Drain until the batch delivers; its serialization time on the wire
    // scales with the dirty set, so poll rather than hardcode a window.
    for (int spin = 0;
         spin < 1000 && rig.engine->GetPair(*pair)->state() !=
                            replication::PairState::kPaired;
         ++spin) {
      rig.env->RunFor(Milliseconds(1));
    }
    const auto t1 = std::chrono::steady_clock::now();
    ZB_CHECK(rig.engine->GetPair(*pair)->state() ==
             replication::PairState::kPaired);
    if (it == 0) {
      wire_before = rig.fwd->bytes_sent();
      auto warm = rig.engine->GetGroupStats(*group);
      ZB_CHECK(warm.ok());
      res.extents = warm->resync_extents;
      res.blocks = warm->resync_blocks;
      continue;
    }
    res.host_seconds +=
        std::chrono::duration<double>(t1 - t0).count();
    res.sim_seconds += double(rig.env->now() - sim0) / double(kSecond);
  }
  ZB_CHECK(rig.main->GetVolume(*p)->ContentEquals(
      *rig.backup->GetVolume(*s)));
  res.wire_bytes = rig.fwd->bytes_sent() - wire_before;
  auto stats = rig.engine->GetGroupStats(*group);
  ZB_CHECK(stats.ok());
  res.extents = stats->resync_extents - res.extents;
  res.blocks = stats->resync_blocks - res.blocks;
  return res;
}

// The engine before the coalescing pipeline tracked dirty blocks in a
// std::unordered_set<Lba> and resynced with one record, one heap string
// and one single-block secondary write per block, applied in hash-table
// iteration order. That code is gone; this reproduces its capture/apply
// loop verbatim against real volumes so the speedup is measured, not
// remembered. (No simulated link: the legacy loop gets the CPU-only
// benefit of the doubt.)
ResyncResult RunLegacyResyncBaseline(bool quick) {
  const uint64_t kBlocks = quick ? 16384 : 2097152;
  const int iters = quick ? 2 : 10;

  Rig rig = MakeRig(1.25e9);
  auto p = rig.main->CreateVolume("p", kBlocks, kSectorBytes);
  auto s = rig.backup->CreateVolume("s", kBlocks, kSectorBytes);
  ZB_CHECK(p.ok() && s.ok());
  storage::Volume* pvol = rig.main->GetVolume(*p);
  storage::Volume* svol = rig.backup->GetVolume(*s);

  struct LegacyBlock {
    uint64_t lba;
    std::string data;
  };
  ResyncResult res;
  for (int it = 0; it <= iters; ++it) {
    const std::string payload(kSectorBytes, static_cast<char>('a' + it));
    std::unordered_set<uint64_t> dirty;
    WriteDirtyPattern(kBlocks, [&](uint64_t lba) {
      ZB_CHECK(pvol->Write(lba, 1, payload).ok());
      dirty.insert(lba);
    });
    const auto t0 = std::chrono::steady_clock::now();
    // Capture, exactly as the old ResyncGroup did: per-block 4 KiB
    // string reads, in hash order.
    std::vector<LegacyBlock> blocks;
    uint64_t bytes = 0;
    for (uint64_t lba : dirty) {
      blocks.push_back(LegacyBlock{lba, pvol->store().ReadBlock(lba)});
      bytes += pvol->block_size() + journal::JournalRecord::kHeaderSize;
    }
    // Delivery: per-block erase, per-block volume lookup (the old loop
    // called FindPair + GetVolume for every record) and a single-block
    // secondary write.
    for (const auto& blk : blocks) {
      dirty.erase(blk.lba);
      storage::Volume* sv = rig.backup->GetVolume(*s);
      if (sv == nullptr) continue;
      ZB_CHECK(sv->Write(blk.lba, 1, blk.data).ok());
    }
    const auto t1 = std::chrono::steady_clock::now();
    ZB_CHECK(dirty.empty());
    if (it == 0) continue;
    res.host_seconds += std::chrono::duration<double>(t1 - t0).count();
    res.wire_bytes += bytes;
    res.extents += blocks.size();
    res.blocks += blocks.size();
  }
  ZB_CHECK(pvol->ContentEquals(*svol));
  return res;
}

// ---- E11: wire compression under a bandwidth-constrained link ---------------

struct WireRunResult {
  uint64_t logical_bytes = 0;   // Journal bytes represented by the frames.
  uint64_t wire_bytes = 0;      // Framed bytes actually on the link.
  double ratio = 0;             // logical / wire.
  double applies_per_sec = 0;   // Records applied per sim-second.
  double mean_lag_ms = 0;       // Apply lag (RPO estimate), sampled per ms.
  double max_lag_ms = 0;
  uint64_t txns = 0;            // Workload transactions in the window.
};

// One cell of the E11 ablation.
struct WireCell {
  const char* workload;  // "ecommerce" or "kv".
  bool compress;
  bool folding;
  WireRunResult r;
};

// Replicates one (ecommerce) or two (kv uses one) MiniDb volumes over a
// 100 Mbit/s link and drives real transactions against them, so the bytes
// on the wire are genuine WAL and checkpoint pages, not synthetic fill.
WireRunResult RunWireScenario(bool ecommerce, bool compress, bool folding,
                              bool quick) {
  Rig rig = MakeRig(1.25e7);  // 100 Mbit/s: the constrained inter-site WAN.
  constexpr uint64_t kDbBlocks = 4096;  // 16 MiB per database volume.
  auto p1 = rig.main->CreateVolume("p1", kDbBlocks);
  auto s1 = rig.backup->CreateVolume("s1", kDbBlocks);
  auto p2 = rig.main->CreateVolume("p2", kDbBlocks);
  auto s2 = rig.backup->CreateVolume("s2", kDbBlocks);
  ZB_CHECK(p1.ok() && s1.ok() && p2.ok() && s2.ok());
  replication::ConsistencyGroupConfig cg;
  cg.name = "wire";
  cg.transfer_interval = Milliseconds(8);
  cg.journal_capacity_bytes = 64ull << 20;
  cg.compress_transfers = compress;
  cg.enable_write_folding = folding;
  auto group = rig.engine->CreateConsistencyGroup(cg);
  ZB_CHECK(group.ok());
  auto add_pair = [&](const char* name, storage::VolumeId pv,
                      storage::VolumeId sv) {
    replication::PairConfig pc;
    pc.name = name;
    pc.primary = pv;
    pc.secondary = sv;
    pc.mode = replication::ReplicationMode::kAsynchronous;
    pc.group = *group;
    ZB_CHECK(rig.engine->CreatePair(pc).ok());
  };
  add_pair("pair1", *p1, *s1);
  add_pair("pair2", *p2, *s2);
  rig.env->RunFor(Milliseconds(20));

  storage::ArrayVolumeDevice dev1(rig.main.get(), *p1);
  storage::ArrayVolumeDevice dev2(rig.main.get(), *p2);
  ZB_CHECK(db::MiniDb::Format(&dev1, BenchDbOptions()).ok());
  auto db1 = std::move(db::MiniDb::Open(&dev1, BenchDbOptions())).value();
  std::unique_ptr<db::MiniDb> db2;
  std::unique_ptr<workload::EcommerceApp> app;
  std::unique_ptr<workload::KvWorkload> kv;
  if (ecommerce) {
    ZB_CHECK(db::MiniDb::Format(&dev2, BenchDbOptions()).ok());
    db2 = std::move(db::MiniDb::Open(&dev2, BenchDbOptions())).value();
    app = std::make_unique<workload::EcommerceApp>(db1.get(), db2.get());
    ZB_CHECK(app->InitializeCatalog().ok());
  } else {
    workload::KvWorkloadConfig kcfg;
    kcfg.record_count = quick ? 200 : 1000;
    kcfg.zipf_theta = 0.9;
    kv = std::make_unique<workload::KvWorkload>(db1.get(), kcfg);
    ZB_CHECK(kv->Load().ok());
  }

  constexpr double kTxnRate = 2000.0;  // Transactions per sim-second.
  const auto period = static_cast<SimDuration>(kSecond / kTxnRate);
  const SimDuration warmup = quick ? Milliseconds(40) : Milliseconds(200);
  const SimDuration measure = quick ? Milliseconds(120) : Milliseconds(600);
  auto step = [&] {
    if (ecommerce) {
      ZB_CHECK(app->PlaceOrder().ok());
    } else {
      ZB_CHECK(kv->Run(1).ok());
    }
    rig.env->RunFor(period);
  };

  const SimTime warm_until = rig.env->now() + warmup;
  while (rig.env->now() < warm_until) step();

  WireRunResult res;
  auto before = rig.engine->GetGroupStats(*group);
  ZB_CHECK(before.ok());
  const SimTime t0 = rig.env->now();
  const SimTime until = rig.env->now() + measure;
  SimTime next_sample = rig.env->now();
  uint64_t samples = 0;
  while (rig.env->now() < until) {
    step();
    ++res.txns;
    if (rig.env->now() >= next_sample) {
      auto stats = rig.engine->GetGroupStats(*group);
      ZB_CHECK(stats.ok());
      const double lag_ms = double(stats->apply_lag) / double(kMillisecond);
      res.mean_lag_ms += lag_ms;
      res.max_lag_ms = std::max(res.max_lag_ms, lag_ms);
      ++samples;
      next_sample += Milliseconds(1);
    }
  }
  auto after = rig.engine->GetGroupStats(*group);
  ZB_CHECK(after.ok());
  ZB_CHECK(after->checksum_rejects == 0);  // Clean link: no CRC rejects.
  res.logical_bytes =
      after->logical_bytes_shipped - before->logical_bytes_shipped;
  res.wire_bytes = after->wire_bytes_shipped - before->wire_bytes_shipped;
  res.ratio = res.wire_bytes > 0
                  ? double(res.logical_bytes) / double(res.wire_bytes)
                  : 1.0;
  if (samples > 0) res.mean_lag_ms /= double(samples);
  res.applies_per_sec = double(after->applied - before->applied) /
                        (double(rig.env->now() - t0) / double(kSecond));
  return res;
}

std::vector<WireCell> RunWireAblation(bool quick) {
  std::vector<WireCell> cells;
  // Full compression x folding grid on the e-commerce order flow, plus
  // the compression toggle on the KV mix (folding on, its default).
  for (const bool compress : {true, false}) {
    for (const bool folding : {true, false}) {
      cells.push_back(WireCell{"ecommerce", compress, folding,
                               RunWireScenario(true, compress, folding,
                                               quick)});
    }
  }
  for (const bool compress : {true, false}) {
    cells.push_back(WireCell{
        "kv", compress, true, RunWireScenario(false, compress, true, quick)});
  }
  return cells;
}

// ---- JSON + table output ----------------------------------------------------

void WriteJson(const std::string& path, bool quick, bool wire_only,
               const FoldResult& on, const FoldResult& off,
               const ResyncResult& ext, const ResyncResult& blk,
               const ResyncResult& legacy,
               const std::vector<WireCell>& wire) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  ZB_CHECK(f != nullptr);
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"bench_pipeline\",\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  if (!wire_only) {
    const double fold_reduction =
        on.logical_bytes > 0
            ? double(off.logical_bytes) / double(on.logical_bytes)
            : 0;
    const double depth_ratio =
        on.mean_journal_depth > 0
            ? off.mean_journal_depth / on.mean_journal_depth
            : 0;
    const double resync_speedup =
        ext.host_seconds > 0 ? legacy.host_seconds / ext.host_seconds : 0;
    std::fprintf(f, "  \"fold\": {\n");
    auto fold_obj = [&](const char* key, const FoldResult& r,
                        const char* tail) {
      std::fprintf(f,
                   "    \"%s\": {\"logical_bytes\": %llu, \"wire_bytes\": "
                   "%llu, \"host_bytes\": %llu, \"records_folded\": %llu, "
                   "\"folded_bytes_saved\": %llu, "
                   "\"mean_journal_depth_bytes\": %.0f, "
                   "\"apply_records_per_sec\": %.0f}%s\n",
                   key, (unsigned long long)r.logical_bytes,
                   (unsigned long long)r.wire_bytes,
                   (unsigned long long)r.host_bytes,
                   (unsigned long long)r.records_folded,
                   (unsigned long long)r.folded_bytes_saved,
                   r.mean_journal_depth, r.apply_throughput, tail);
    };
    fold_obj("folding_on", on, ",");
    fold_obj("folding_off", off, ",");
    std::fprintf(f, "    \"logical_bytes_reduction\": %.3f,\n",
                 fold_reduction);
    std::fprintf(f, "    \"journal_depth_ratio\": %.3f\n", depth_ratio);
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"resync\": {\n");
    std::fprintf(f, "    \"sector_bytes\": %u,\n", kSectorBytes);
    auto resync_obj = [&](const char* key, const ResyncResult& r,
                          const char* tail) {
      std::fprintf(f,
                   "    \"%s\": {\"host_seconds\": %.6f, \"sim_seconds\": "
                   "%.6f, \"wire_bytes\": %llu, \"extents\": %llu, "
                   "\"blocks\": %llu}%s\n",
                   key, r.host_seconds, r.sim_seconds,
                   (unsigned long long)r.wire_bytes,
                   (unsigned long long)r.extents,
                   (unsigned long long)r.blocks, tail);
    };
    resync_obj("extent", ext, ",");
    resync_obj("per_block", blk, ",");
    resync_obj("legacy_unordered_set", legacy, ",");
    std::fprintf(f, "    \"host_time_speedup_vs_legacy\": %.3f\n",
                 resync_speedup);
    std::fprintf(f, "  },\n");
  }
  std::fprintf(f, "  \"wire\": [\n");
  for (size_t i = 0; i < wire.size(); ++i) {
    const WireCell& c = wire[i];
    std::fprintf(f,
                 "    {\"workload\": \"%s\", \"compress\": %s, "
                 "\"folding\": %s, \"logical_bytes\": %llu, "
                 "\"wire_bytes\": %llu, \"compression_ratio\": %.3f, "
                 "\"applies_per_sec\": %.0f, \"mean_apply_lag_ms\": %.3f, "
                 "\"max_apply_lag_ms\": %.3f, \"txns\": %llu}%s\n",
                 c.workload, c.compress ? "true" : "false",
                 c.folding ? "true" : "false",
                 (unsigned long long)c.r.logical_bytes,
                 (unsigned long long)c.r.wire_bytes, c.r.ratio,
                 c.r.applies_per_sec, c.r.mean_lag_ms, c.r.max_lag_ms,
                 (unsigned long long)c.r.txns,
                 i + 1 < wire.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
}

int Run(bool quick, bool wire_only, const std::string& out_path) {
  FoldResult on, off;
  ResyncResult ext, blk, legacy;
  if (!wire_only) {
    PrintTitle("E10a: write-folding on the hot-10% overwrite workload "
               "(20k writes/s, 16 ms cycle, 1 Gbit/s link)");
    PrintLine("%12s %12s %12s %12s %12s %12s %16s", "folding", "host_MB",
              "logical_MB", "wire_MB", "folded_recs", "depth_KB",
              "applied_per_s");
    PrintRule();
    on = RunFoldScenario(true, quick);
    off = RunFoldScenario(false, quick);
    for (const auto& [label, r] :
         {std::pair<const char*, const FoldResult&>{"on", on},
          {"off", off}}) {
      PrintLine("%12s %12.1f %12.1f %12.1f %12llu %12.0f %16.0f", label,
                double(r.host_bytes) / 1e6, double(r.logical_bytes) / 1e6,
                double(r.wire_bytes) / 1e6,
                (unsigned long long)r.records_folded,
                r.mean_journal_depth / 1024.0, r.apply_throughput);
    }
    PrintRule();
    const double fold_reduction =
        on.logical_bytes > 0
            ? double(off.logical_bytes) / double(on.logical_bytes)
            : 0;
    const double depth_ratio =
        on.mean_journal_depth > 0
            ? off.mean_journal_depth / on.mean_journal_depth
            : 0;
    PrintLine("logical-bytes reduction: %.2fx   journal-depth ratio: %.2fx",
              fold_reduction, depth_ratio);

    PrintTitle("E10b: 25%-dirty 1 GiB volume resync (512 B sectors) — "
               "merged extents vs the per-block transfer of the "
               "unordered-set engine");
    PrintLine("%12s %14s %14s %14s %14s", "mode", "host_ms", "sim_ms",
              "extents", "wire_MB");
    PrintRule();
    ext = RunResyncScenario(true, quick);
    blk = RunResyncScenario(false, quick);
    legacy = RunLegacyResyncBaseline(quick);
    for (const auto& [label, r] :
         {std::pair<const char*, const ResyncResult&>{"extent", ext},
          {"per_block", blk},
          {"legacy_set", legacy}}) {
      PrintLine("%12s %14.2f %14.2f %14llu %14.1f", label,
                r.host_seconds * 1e3, r.sim_seconds * 1e3,
                (unsigned long long)r.extents, double(r.wire_bytes) / 1e6);
    }
    PrintRule();
    const double resync_speedup =
        ext.host_seconds > 0 ? legacy.host_seconds / ext.host_seconds : 0;
    PrintLine("resync host-time speedup vs unordered-set engine: %.2fx",
              resync_speedup);
  }

  PrintTitle("E11: wire-format shipping on a 100 Mbit/s link — "
             "compression x write-folding over real DB workloads "
             "(2k txn/s)");
  PrintLine("%12s %10s %10s %12s %12s %8s %14s %12s %12s", "workload",
            "compress", "folding", "logical_MB", "wire_MB", "ratio",
            "applies_per_s", "lag_ms_avg", "lag_ms_max");
  PrintRule();
  std::vector<WireCell> wire = RunWireAblation(quick);
  for (const WireCell& c : wire) {
    PrintLine("%12s %10s %10s %12.2f %12.2f %8.2f %14.0f %12.2f %12.2f",
              c.workload, c.compress ? "on" : "off",
              c.folding ? "on" : "off", double(c.r.logical_bytes) / 1e6,
              double(c.r.wire_bytes) / 1e6, c.r.ratio, c.r.applies_per_sec,
              c.r.mean_lag_ms, c.r.max_lag_ms);
  }
  PrintRule();

  WriteJson(out_path, quick, wire_only, on, off, ext, blk, legacy, wire);
  PrintLine("wrote %s", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace zerobak::bench

int main(int argc, char** argv) {
  zerobak::SetLogLevel(zerobak::LogLevel::kError);
  bool quick = false;
  bool wire_only = false;
  std::string out_path = "BENCH_pipeline.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--wire-only") == 0) {
      wire_only = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }
  return zerobak::bench::Run(quick, wire_only, out_path);
}
