// Microbenchmarks (google-benchmark) for the hot data-path primitives:
// journal append/peek/trim, CRC32C, WAL record codec, MiniDb commit,
// event-queue churn, COW write path, and JSON (de)serialization. These
// are wall-clock benchmarks of the library code itself, complementing
// the simulated-time experiment benches E1-E7.
#include <benchmark/benchmark.h>

#include "block/mem_volume.h"
#include "common/compress.h"
#include "common/crc32c.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/value.h"
#include "db/format.h"
#include "db/minidb.h"
#include "journal/journal.h"
#include "replication/wire.h"
#include "sim/environment.h"
#include "snapshot/snapshot.h"
#include "storage/array.h"
#include "workload/kv_workload.h"

namespace zerobak {
namespace {

void BM_Crc32c(benchmark::State& state) {
  const std::string data(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(data.data(), data.size()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(64)->Arg(4096)->Arg(65536)->Arg(1 << 20);

// The individual kernels behind the dispatched Crc32c, so the recorded
// numbers show what the runtime dispatch actually buys on this host.
template <uint32_t (*Kernel)(uint32_t, const void*, size_t)>
void BM_Crc32cKernel(benchmark::State& state) {
  const std::string data(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Kernel(0, data.data(), data.size()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
void BM_Crc32cPortable(benchmark::State& state) {
  BM_Crc32cKernel<internal::Crc32cPortable>(state);
}
BENCHMARK(BM_Crc32cPortable)->Arg(4096)->Arg(65536);
void BM_Crc32cSlice8(benchmark::State& state) {
  BM_Crc32cKernel<internal::Crc32cSlice8>(state);
}
BENCHMARK(BM_Crc32cSlice8)->Arg(4096)->Arg(65536);
void BM_Crc32cHardware(benchmark::State& state) {
  if (!internal::Crc32cHardwareSupported()) {
    state.SkipWithError("no SSE4.2 CRC32 on this host");
    return;
  }
  BM_Crc32cKernel<internal::Crc32cHardware>(state);
}
BENCHMARK(BM_Crc32cHardware)->Arg(4096)->Arg(65536);

// The GF(2) fold that joins per-chunk CRCs into the whole-frame CRC.
// The general form re-derives the len2 operator by matrix squaring every
// call (tens of microseconds — MORE than hardware-CRCing the 64 KiB
// chunk it joins), which is why the wire path uses the precompiled
// Crc32cCombineOp: one matrix-vector product (~32 xors) per join.
void BM_Crc32cCombine(benchmark::State& state) {
  const size_t len2 = static_cast<size_t>(state.range(0));
  uint32_t a = 0xdeadbeef, b = 0x12345678;
  for (auto _ : state) {
    benchmark::DoNotOptimize(a = Crc32cCombine(a, b, len2));
  }
}
BENCHMARK(BM_Crc32cCombine)->Arg(4096)->Arg(65536)->Arg(1 << 20);

void BM_Crc32cCombineOp(benchmark::State& state) {
  const Crc32cCombineOp op(static_cast<size_t>(state.range(0)));
  uint32_t a = 0xdeadbeef, b = 0x12345678;
  for (auto _ : state) {
    benchmark::DoNotOptimize(a = op.Combine(a, b));
  }
}
BENCHMARK(BM_Crc32cCombineOp)->Arg(4096)->Arg(65536)->Arg(1 << 20);

// A transfer batch's worth of database pages, as the wire compressor sees
// them. Arg selects the payload shape: 0 = structured KV/WAL-like rows
// (the representative case), 1 = random bytes (the stored-escape case).
std::string MakeBatchPayload(size_t bytes, bool random) {
  std::string out;
  out.reserve(bytes);
  Rng rng(42);
  if (random) {
    while (out.size() < bytes) {
      out.push_back(static_cast<char>(rng.Uniform(256)));
    }
    return out;
  }
  uint64_t row = 0;
  while (out.size() < bytes) {
    out += "order-" + std::to_string(100000 + row % 4096) +
           "|item-" + std::to_string(row % 128) +
           "|{\"quantity\": 3, \"amountCents\": 12999, \"state\": "
           "\"committed\"}\n";
    ++row;
  }
  out.resize(bytes);
  return out;
}

void BM_CompressBatch(benchmark::State& state) {
  constexpr size_t kBatchBytes = 64 << 10;  // One transfer cycle's payload.
  const std::string raw = MakeBatchPayload(kBatchBytes, state.range(0) == 1);
  std::string compressed;
  std::string back;
  for (auto _ : state) {
    compressed.clear();
    Compress(raw, &compressed);
    back.clear();
    benchmark::DoNotOptimize(Decompress(compressed, &back));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kBatchBytes));
  state.counters["ratio"] =
      static_cast<double>(raw.size()) / static_cast<double>(compressed.size());
}
BENCHMARK(BM_CompressBatch)->Arg(0)->Arg(1);

// Full wire round trip of one shipped batch: encode (headers + payload
// concat + optional compression + CRC) then verify + decode back into
// records. This is the per-pump-cycle CPU cost of the shipping path.
// Arg: 0 = compression off, 1 = on.
void BM_WireEncodeDecode(benchmark::State& state) {
  constexpr int kRecords = 16;
  constexpr size_t kBlock = 4096;
  const std::string rows = MakeBatchPayload(kRecords * kBlock, false);
  std::vector<journal::JournalRecord> batch;
  for (int i = 0; i < kRecords; ++i) {
    journal::JournalRecord rec;
    rec.sequence = static_cast<journal::SequenceNumber>(100 + i);
    rec.volume_id = 7;
    rec.lba = static_cast<uint64_t>(i) * 13;
    rec.block_count = 1;
    rec.payload =
        journal::PayloadBuffer::Copy(rows.substr(i * kBlock, kBlock));
    rec.ack_time = Milliseconds(5) + i;
    rec.atomic_through = static_cast<journal::SequenceNumber>(99 + kRecords);
    batch.push_back(std::move(rec));
  }
  const bool compress = state.range(0) == 1;
  uint64_t logical = 0;
  uint64_t wire = 0;
  for (auto _ : state) {
    replication::wire::EncodedBatch enc =
        replication::wire::EncodeBatch(batch, compress);
    logical = enc.logical_bytes;
    wire = enc.frame.size();
    auto decoded = replication::wire::DecodeBatch(enc.frame);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(logical));
  state.counters["wire_bytes"] = static_cast<double>(wire);
  state.counters["logical_bytes"] = static_cast<double>(logical);
}
BENCHMARK(BM_WireEncodeDecode)->Arg(0)->Arg(1);

void BM_JournalAppendTrim(benchmark::State& state) {
  journal::JournalVolume jnl(1ull << 30);
  const size_t block = static_cast<size_t>(state.range(0));
  // The interceptor allocates the payload once per host write; the
  // journal append itself only shares the buffer. Measure the journal's
  // own cost by sharing one pre-allocated payload across appends.
  const journal::PayloadBuffer payload =
      journal::PayloadBuffer::Copy(std::string(block, 'd'));
  for (auto _ : state) {
    journal::JournalRecord rec;
    rec.volume_id = 1;
    rec.lba = 0;
    rec.block_count = 1;
    rec.payload = payload;
    auto seq = jnl.Append(std::move(rec));
    benchmark::DoNotOptimize(seq);
    if (jnl.record_count() > 1024) {
      (void)jnl.TrimThrough(jnl.written() - 512);
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(block));
}
BENCHMARK(BM_JournalAppendTrim)->Arg(512)->Arg(4096);

void BM_JournalPeek(benchmark::State& state) {
  journal::JournalVolume jnl(1ull << 30);
  for (int i = 0; i < 4096; ++i) {
    journal::JournalRecord rec;
    rec.volume_id = 1;
    rec.lba = static_cast<uint64_t>(i);
    rec.block_count = 1;
    rec.payload = journal::PayloadBuffer::Copy(std::string(4096, 'd'));
    (void)jnl.Append(std::move(rec));
  }
  std::vector<const journal::JournalRecord*> batch;
  uint64_t bytes = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(jnl.PeekViews(0, 1 << 20, &batch));
    bytes += 1 << 20;
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
}
BENCHMARK(BM_JournalPeek);

// End-to-end journal pipeline: payload capture (the one allocation per
// write) -> primary append -> PeekViews batch -> shared-buffer ship ->
// secondary AppendWithSequence -> apply to a MemVolume -> trim both.
// This is the library-level shape of the ADC hot path. A standing
// backlog of shipped-but-unacked records stays resident, as in async
// steady state, so payload buffers churn through a live pool instead of
// ping-ponging between two allocator-hot chunks.
void BM_JournalShipApplyPipeline(benchmark::State& state) {
  const size_t block = static_cast<size_t>(state.range(0));
  constexpr int kBatch = 8;          // Records per pump cycle.
  constexpr uint64_t kRetain = 256;  // Shipped-but-unacked backlog.
  journal::JournalVolume pj(1ull << 30);
  journal::JournalVolume sj(1ull << 30);
  block::MemVolume svol(1 << 9, static_cast<uint32_t>(block));
  const std::string host(block, 'x');
  uint64_t lba = 0;
  auto intercept = [&] {
    journal::JournalRecord rec;
    rec.volume_id = 1;
    rec.lba = lba++ & 0x1ff;
    rec.block_count = 1;
    rec.payload = journal::PayloadBuffer::Copy(host);
    (void)pj.Append(std::move(rec));
  };
  for (uint64_t i = 0; i < kRetain; ++i) intercept();
  std::vector<const journal::JournalRecord*> batch;
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) intercept();
    pj.PeekViews(pj.shipped(),
                 kBatch * (journal::JournalRecord::kHeaderSize + block),
                 &batch);
    for (const journal::JournalRecord* rec : batch) {
      (void)sj.AppendWithSequence(*rec);  // Shares the payload buffer.
      (void)svol.Write(rec->lba, rec->block_count, rec->data());
    }
    const journal::SequenceNumber last = batch.back()->sequence;
    pj.MarkShipped(last);
    (void)sj.TrimThrough(last);
    (void)pj.TrimThrough(last > kRetain ? last - kRetain : 0);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kBatch *
                          static_cast<int64_t>(block));
}
BENCHMARK(BM_JournalShipApplyPipeline)->Arg(512)->Arg(4096);

void BM_MemVolumeSeqWrite(benchmark::State& state) {
  const size_t block = static_cast<size_t>(state.range(0));
  block::MemVolume vol(1 << 12, static_cast<uint32_t>(block));
  const std::string payload(block, 'x');
  uint64_t lba = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(vol.Write(lba, 1, payload));
    lba = (lba + 1) & 0xfff;
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(block));
}
BENCHMARK(BM_MemVolumeSeqWrite)->Arg(512)->Arg(4096);

void BM_MemVolumeRandWrite(benchmark::State& state) {
  const size_t block = static_cast<size_t>(state.range(0));
  block::MemVolume vol(1 << 12, static_cast<uint32_t>(block));
  const std::string payload(block, 'x');
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vol.Write(rng.Uniform(1 << 12), 1, payload));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(block));
}
BENCHMARK(BM_MemVolumeRandWrite)->Arg(512)->Arg(4096);

void BM_WalRecordCodec(benchmark::State& state) {
  db::WalRecord rec;
  rec.lsn = 42;
  rec.txn_id = 7;
  rec.generation = 1;
  for (int i = 0; i < state.range(0); ++i) {
    rec.ops.push_back(db::Op{db::OpType::kPut, "orders",
                             "order-" + std::to_string(i),
                             std::string(100, 'v')});
  }
  for (auto _ : state) {
    const std::string bytes = rec.Encode();
    std::string_view in(bytes);
    auto decoded = db::WalRecord::Decode(&in);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_WalRecordCodec)->Arg(1)->Arg(8)->Arg(64);

void BM_MiniDbCommit(benchmark::State& state) {
  block::MemVolume device(1 + 2 * 1024 + 8192);
  db::DbOptions opts;
  opts.checkpoint_blocks = 1024;
  opts.wal_blocks = 8192;
  (void)db::MiniDb::Format(&device, opts);
  auto db = std::move(db::MiniDb::Open(&device, opts)).value();
  uint64_t i = 0;
  for (auto _ : state) {
    db::Transaction txn = db->Begin();
    txn.Put("orders", "order-" + std::to_string(i % 4096),
            std::string(static_cast<size_t>(state.range(0)), 'v'));
    benchmark::DoNotOptimize(db->Commit(std::move(txn)));
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MiniDbCommit)->Arg(64)->Arg(1024);

void BM_EventQueueChurn(benchmark::State& state) {
  sim::SimEnvironment env;
  Rng rng(1);
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      env.Schedule(static_cast<SimDuration>(rng.Uniform(1000) + 1), [] {});
    }
    env.RunUntilIdle();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_EventQueueChurn);

void BM_HostWritePath(benchmark::State& state) {
  sim::SimEnvironment env;
  storage::ArrayConfig cfg;
  cfg.media = block::DeviceLatencyModel{0, 0, 0, 0, 1};
  storage::StorageArray array(&env, cfg);
  auto v = array.CreateVolume("v", 1 << 16);
  const std::string payload(block::kDefaultBlockSize, 'x');
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        array.WriteSync(*v, rng.Uniform(1 << 16), payload));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          block::kDefaultBlockSize);
}
BENCHMARK(BM_HostWritePath);

void BM_CowWritePath(benchmark::State& state) {
  sim::SimEnvironment env;
  storage::ArrayConfig cfg;
  cfg.media = block::DeviceLatencyModel{0, 0, 0, 0, 1};
  storage::StorageArray array(&env, cfg);
  auto v = array.CreateVolume("v", 1 << 16);
  snapshot::SnapshotManager snapshots(&array);
  for (int64_t s = 0; s < state.range(0); ++s) {
    (void)snapshots.CreateSnapshot(*v, "s" + std::to_string(s));
  }
  const std::string payload(block::kDefaultBlockSize, 'x');
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        array.WriteSync(*v, rng.Uniform(1 << 16), payload));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          block::kDefaultBlockSize);
}
BENCHMARK(BM_CowWritePath)->Arg(0)->Arg(1)->Arg(4);

void BM_JsonRoundTrip(benchmark::State& state) {
  Value row = Value::MakeObject();
  row["item"] = "item-000042";
  row["quantity"] = 3;
  row["amountCents"] = 12999;
  row["tags"] = Value::Array{Value("a"), Value("b")};
  const std::string json = row.ToJson();
  for (auto _ : state) {
    auto parsed = Value::FromJson(json);
    benchmark::DoNotOptimize(parsed);
    benchmark::DoNotOptimize(parsed->ToJson());
  }
}
BENCHMARK(BM_JsonRoundTrip);

void BM_KvWorkloadMixed(benchmark::State& state) {
  block::MemVolume device(1 + 2 * 1024 + 8192);
  db::DbOptions opts;
  opts.checkpoint_blocks = 1024;
  opts.wal_blocks = 8192;
  (void)db::MiniDb::Format(&device, opts);
  auto db = std::move(db::MiniDb::Open(&device, opts)).value();
  workload::KvWorkloadConfig cfg;
  cfg.record_count = 1000;
  cfg.zipf_theta = state.range(0) == 0 ? 0.0 : 0.9;
  workload::KvWorkload kv(db.get(), cfg);
  (void)kv.Load();
  for (auto _ : state) {
    benchmark::DoNotOptimize(kv.Run(100));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 100);
}
BENCHMARK(BM_KvWorkloadMixed)->Arg(0)->Arg(1);

void BM_HistogramAdd(benchmark::State& state) {
  Histogram h;
  Rng rng(5);
  for (auto _ : state) {
    h.Add(rng.Uniform(1 << 30));
  }
  benchmark::DoNotOptimize(h.Percentile(99));
}
BENCHMARK(BM_HistogramAdd);

}  // namespace
}  // namespace zerobak

BENCHMARK_MAIN();
