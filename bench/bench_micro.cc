// Microbenchmarks (google-benchmark) for the hot data-path primitives:
// journal append/peek/trim, CRC32C, WAL record codec, MiniDb commit,
// event-queue churn, COW write path, and JSON (de)serialization. These
// are wall-clock benchmarks of the library code itself, complementing
// the simulated-time experiment benches E1-E7.
#include <benchmark/benchmark.h>

#include "block/mem_volume.h"
#include "common/crc32c.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/value.h"
#include "db/format.h"
#include "db/minidb.h"
#include "journal/journal.h"
#include "sim/environment.h"
#include "snapshot/snapshot.h"
#include "storage/array.h"
#include "workload/kv_workload.h"

namespace zerobak {
namespace {

void BM_Crc32c(benchmark::State& state) {
  const std::string data(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(data.data(), data.size()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(64)->Arg(4096)->Arg(65536);

void BM_JournalAppendTrim(benchmark::State& state) {
  journal::JournalVolume jnl(1ull << 30);
  const size_t block = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    journal::JournalRecord rec;
    rec.volume_id = 1;
    rec.lba = 0;
    rec.block_count = 1;
    rec.data = std::string(block, 'd');
    auto seq = jnl.Append(std::move(rec));
    benchmark::DoNotOptimize(seq);
    if (jnl.record_count() > 1024) {
      (void)jnl.TrimThrough(jnl.written() - 512);
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(block));
}
BENCHMARK(BM_JournalAppendTrim)->Arg(512)->Arg(4096);

void BM_JournalPeek(benchmark::State& state) {
  journal::JournalVolume jnl(1ull << 30);
  for (int i = 0; i < 4096; ++i) {
    journal::JournalRecord rec;
    rec.volume_id = 1;
    rec.lba = static_cast<uint64_t>(i);
    rec.block_count = 1;
    rec.data = std::string(4096, 'd');
    (void)jnl.Append(std::move(rec));
  }
  std::vector<journal::JournalRecord> batch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(jnl.Peek(0, 1 << 20, &batch));
  }
}
BENCHMARK(BM_JournalPeek);

void BM_WalRecordCodec(benchmark::State& state) {
  db::WalRecord rec;
  rec.lsn = 42;
  rec.txn_id = 7;
  rec.generation = 1;
  for (int i = 0; i < state.range(0); ++i) {
    rec.ops.push_back(db::Op{db::OpType::kPut, "orders",
                             "order-" + std::to_string(i),
                             std::string(100, 'v')});
  }
  for (auto _ : state) {
    const std::string bytes = rec.Encode();
    std::string_view in(bytes);
    auto decoded = db::WalRecord::Decode(&in);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_WalRecordCodec)->Arg(1)->Arg(8)->Arg(64);

void BM_MiniDbCommit(benchmark::State& state) {
  block::MemVolume device(1 + 2 * 1024 + 8192);
  db::DbOptions opts;
  opts.checkpoint_blocks = 1024;
  opts.wal_blocks = 8192;
  (void)db::MiniDb::Format(&device, opts);
  auto db = std::move(db::MiniDb::Open(&device, opts)).value();
  uint64_t i = 0;
  for (auto _ : state) {
    db::Transaction txn = db->Begin();
    txn.Put("orders", "order-" + std::to_string(i % 4096),
            std::string(static_cast<size_t>(state.range(0)), 'v'));
    benchmark::DoNotOptimize(db->Commit(std::move(txn)));
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MiniDbCommit)->Arg(64)->Arg(1024);

void BM_EventQueueChurn(benchmark::State& state) {
  sim::SimEnvironment env;
  Rng rng(1);
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      env.Schedule(static_cast<SimDuration>(rng.Uniform(1000) + 1), [] {});
    }
    env.RunUntilIdle();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_EventQueueChurn);

void BM_HostWritePath(benchmark::State& state) {
  sim::SimEnvironment env;
  storage::ArrayConfig cfg;
  cfg.media = block::DeviceLatencyModel{0, 0, 0, 0, 1};
  storage::StorageArray array(&env, cfg);
  auto v = array.CreateVolume("v", 1 << 16);
  const std::string payload(block::kDefaultBlockSize, 'x');
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        array.WriteSync(*v, rng.Uniform(1 << 16), payload));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          block::kDefaultBlockSize);
}
BENCHMARK(BM_HostWritePath);

void BM_CowWritePath(benchmark::State& state) {
  sim::SimEnvironment env;
  storage::ArrayConfig cfg;
  cfg.media = block::DeviceLatencyModel{0, 0, 0, 0, 1};
  storage::StorageArray array(&env, cfg);
  auto v = array.CreateVolume("v", 1 << 16);
  snapshot::SnapshotManager snapshots(&array);
  for (int64_t s = 0; s < state.range(0); ++s) {
    (void)snapshots.CreateSnapshot(*v, "s" + std::to_string(s));
  }
  const std::string payload(block::kDefaultBlockSize, 'x');
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        array.WriteSync(*v, rng.Uniform(1 << 16), payload));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          block::kDefaultBlockSize);
}
BENCHMARK(BM_CowWritePath)->Arg(0)->Arg(1)->Arg(4);

void BM_JsonRoundTrip(benchmark::State& state) {
  Value row = Value::MakeObject();
  row["item"] = "item-000042";
  row["quantity"] = 3;
  row["amountCents"] = 12999;
  row["tags"] = Value::Array{Value("a"), Value("b")};
  const std::string json = row.ToJson();
  for (auto _ : state) {
    auto parsed = Value::FromJson(json);
    benchmark::DoNotOptimize(parsed);
    benchmark::DoNotOptimize(parsed->ToJson());
  }
}
BENCHMARK(BM_JsonRoundTrip);

void BM_KvWorkloadMixed(benchmark::State& state) {
  block::MemVolume device(1 + 2 * 1024 + 8192);
  db::DbOptions opts;
  opts.checkpoint_blocks = 1024;
  opts.wal_blocks = 8192;
  (void)db::MiniDb::Format(&device, opts);
  auto db = std::move(db::MiniDb::Open(&device, opts)).value();
  workload::KvWorkloadConfig cfg;
  cfg.record_count = 1000;
  cfg.zipf_theta = state.range(0) == 0 ? 0.0 : 0.9;
  workload::KvWorkload kv(db.get(), cfg);
  (void)kv.Load();
  for (auto _ : state) {
    benchmark::DoNotOptimize(kv.Run(100));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 100);
}
BENCHMARK(BM_KvWorkloadMixed)->Arg(0)->Arg(1);

void BM_HistogramAdd(benchmark::State& state) {
  Histogram h;
  Rng rng(5);
  for (auto _ : state) {
    h.Add(rng.Uniform(1 << 30));
  }
  benchmark::DoNotOptimize(h.Percentile(99));
}
BENCHMARK(BM_HistogramAdd);

}  // namespace
}  // namespace zerobak

BENCHMARK_MAIN();
