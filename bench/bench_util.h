#ifndef ZEROBAK_BENCH_BENCH_UTIL_H_
#define ZEROBAK_BENCH_BENCH_UTIL_H_

// Shared harness pieces for the experiment benches (E1-E7). Each bench
// binary regenerates one table/figure of the evaluation; see DESIGN.md
// section 4 for the experiment index and EXPERIMENTS.md for the recorded
// results.

#include <cstdarg>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "core/demo_system.h"
#include "db/minidb.h"
#include "storage/array_device.h"
#include "workload/ecommerce.h"
#include "workload/invariants.h"

namespace zerobak::bench {

// ---- Table printing ---------------------------------------------------------

inline void PrintTitle(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintLine(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

inline void PrintRule(int width = 96) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

// ---- A deployed business process on a DemoSystem ----------------------------

inline db::DbOptions BenchDbOptions() {
  db::DbOptions opts;
  opts.checkpoint_blocks = 256;
  opts.wal_blocks = 1024;
  return opts;
}

// The demonstration's business process, deployed and ready: namespace,
// two PVCs, formatted databases, catalog loaded.
struct BusinessProcess {
  std::unique_ptr<storage::ArrayVolumeDevice> sales_dev;
  std::unique_ptr<storage::ArrayVolumeDevice> stock_dev;
  std::unique_ptr<db::MiniDb> sales_db;
  std::unique_ptr<db::MiniDb> stock_db;
  std::unique_ptr<workload::EcommerceApp> app;
};

inline BusinessProcess DeployBusinessProcess(core::DemoSystem* system,
                                             const std::string& ns,
                                             uint64_t seed = 1234) {
  BusinessProcess bp;
  ZB_CHECK(system->CreateBusinessNamespace(ns).ok());
  ZB_CHECK(system->CreatePvc(ns, "sales-db", 8 << 20).ok());
  ZB_CHECK(system->CreatePvc(ns, "stock-db", 8 << 20).ok());
  system->env()->RunFor(Milliseconds(10));

  auto sales_vol = system->ResolveMainVolume(ns, "sales-db");
  auto stock_vol = system->ResolveMainVolume(ns, "stock-db");
  ZB_CHECK(sales_vol.ok() && stock_vol.ok());
  bp.sales_dev = std::make_unique<storage::ArrayVolumeDevice>(
      system->main_site()->array(), *sales_vol);
  bp.stock_dev = std::make_unique<storage::ArrayVolumeDevice>(
      system->main_site()->array(), *stock_vol);
  ZB_CHECK(db::MiniDb::Format(bp.sales_dev.get(), BenchDbOptions()).ok());
  ZB_CHECK(db::MiniDb::Format(bp.stock_dev.get(), BenchDbOptions()).ok());
  bp.sales_db =
      std::move(db::MiniDb::Open(bp.sales_dev.get(), BenchDbOptions()))
          .value();
  bp.stock_db =
      std::move(db::MiniDb::Open(bp.stock_dev.get(), BenchDbOptions()))
          .value();
  workload::EcommerceConfig cfg;
  cfg.seed = seed;
  bp.app = std::make_unique<workload::EcommerceApp>(bp.sales_db.get(),
                                                    bp.stock_db.get(), cfg);
  ZB_CHECK(bp.app->InitializeCatalog().ok());
  return bp;
}

// Opens the recovered databases on the backup site after a failover and
// returns the business-consistency report plus the recovered order count.
struct RecoveryOutcome {
  bool recovered = false;
  uint64_t orders = 0;
  workload::CollapseReport report;
};

inline RecoveryOutcome RecoverOnBackup(core::DemoSystem* system,
                                       const std::string& ns) {
  RecoveryOutcome out;
  auto sales_vol = system->ResolveBackupVolume(ns, "sales-db");
  auto stock_vol = system->ResolveBackupVolume(ns, "stock-db");
  if (!sales_vol.ok() || !stock_vol.ok()) return out;
  storage::ArrayVolumeDevice sales_dev(system->backup_site()->array(),
                                       *sales_vol);
  storage::ArrayVolumeDevice stock_dev(system->backup_site()->array(),
                                       *stock_vol);
  auto sales = db::MiniDb::Open(&sales_dev, BenchDbOptions());
  auto stock = db::MiniDb::Open(&stock_dev, BenchDbOptions());
  if (!sales.ok() || !stock.ok()) return out;
  out.recovered = true;
  out.orders = (*sales)->RowCount(workload::kOrderTable);
  out.report = workload::CheckConsistency(sales->get(), stock->get());
  return out;
}

// Three-resource business process (stock + payments + sales databases),
// for the Section-I variant with an extra seam in the commit chain.
struct ThreeDbBusinessProcess {
  std::unique_ptr<storage::ArrayVolumeDevice> sales_dev;
  std::unique_ptr<storage::ArrayVolumeDevice> stock_dev;
  std::unique_ptr<storage::ArrayVolumeDevice> payments_dev;
  std::unique_ptr<db::MiniDb> sales_db;
  std::unique_ptr<db::MiniDb> stock_db;
  std::unique_ptr<db::MiniDb> payments_db;
  std::unique_ptr<workload::EcommerceApp> app;
};

inline ThreeDbBusinessProcess DeployThreeDbBusinessProcess(
    core::DemoSystem* system, const std::string& ns, uint64_t seed = 1234) {
  ThreeDbBusinessProcess bp;
  ZB_CHECK(system->CreateBusinessNamespace(ns).ok());
  for (const char* pvc : {"sales-db", "stock-db", "payments-db"}) {
    ZB_CHECK(system->CreatePvc(ns, pvc, 8 << 20).ok());
  }
  system->env()->RunFor(Milliseconds(10));
  auto open = [&](const char* pvc,
                  std::unique_ptr<storage::ArrayVolumeDevice>* dev) {
    auto vol = system->ResolveMainVolume(ns, pvc);
    ZB_CHECK(vol.ok());
    *dev = std::make_unique<storage::ArrayVolumeDevice>(
        system->main_site()->array(), *vol);
    ZB_CHECK(db::MiniDb::Format(dev->get(), BenchDbOptions()).ok());
    return std::move(db::MiniDb::Open(dev->get(), BenchDbOptions()))
        .value();
  };
  bp.sales_db = open("sales-db", &bp.sales_dev);
  bp.stock_db = open("stock-db", &bp.stock_dev);
  bp.payments_db = open("payments-db", &bp.payments_dev);
  workload::EcommerceConfig cfg;
  cfg.seed = seed;
  bp.app = std::make_unique<workload::EcommerceApp>(
      bp.sales_db.get(), bp.stock_db.get(), bp.payments_db.get(), cfg);
  ZB_CHECK(bp.app->InitializeCatalog().ok());
  return bp;
}

// Recovered-state check for the three-resource process.
inline RecoveryOutcome RecoverThreeDbOnBackup(core::DemoSystem* system,
                                              const std::string& ns) {
  RecoveryOutcome out;
  db::DbOptions ro = BenchDbOptions();
  ro.read_only = true;
  auto open = [&](const char* pvc)
      -> std::pair<std::unique_ptr<storage::ArrayVolumeDevice>,
                   std::unique_ptr<db::MiniDb>> {
    auto vol = system->ResolveBackupVolume(ns, pvc);
    if (!vol.ok()) return {nullptr, nullptr};
    auto dev = std::make_unique<storage::ArrayVolumeDevice>(
        system->backup_site()->array(), *vol);
    auto db = db::MiniDb::Open(dev.get(), ro);
    if (!db.ok()) return {nullptr, nullptr};
    return {std::move(dev), std::move(db).value()};
  };
  auto [sales_dev, sales] = open("sales-db");
  auto [stock_dev, stock] = open("stock-db");
  auto [pay_dev, payments] = open("payments-db");
  if (!sales || !stock || !payments) return out;
  out.recovered = true;
  out.orders = sales->RowCount(workload::kOrderTable);
  out.report = workload::CheckConsistency(sales.get(), stock.get(),
                                          payments.get());
  return out;
}

// Zero-latency media: functional mode for consistency/RPO drills where
// database writes must ack inline.
inline core::DemoSystemConfig FunctionalConfig() {
  core::DemoSystemConfig config;
  config.main_array.media = block::DeviceLatencyModel{0, 0, 0, 0, 1};
  config.backup_array.media = block::DeviceLatencyModel{0, 0, 0, 0, 2};
  return config;
}

}  // namespace zerobak::bench

#endif  // ZEROBAK_BENCH_BENCH_UTIL_H_
