// E1 — "Eliminate system slowdown" (Fig. 1 / Section I claim).
//
// Regenerates the slowdown comparison: business-transaction latency and
// throughput with (a) no remote copy, (b) synchronous data copy, and
// (c) asynchronous data copy with a consistency group, swept over the
// inter-site one-way delay. Expected shape: SDC latency grows linearly
// with the round trip; ADC stays at the no-backup baseline (<5%).
#include <memory>

#include "bench/bench_util.h"
#include "replication/replication.h"
#include "sim/network.h"
#include "workload/latency_driver.h"

namespace zerobak::bench {
namespace {

struct CellResult {
  double mean_ms = 0;
  double p99_ms = 0;
  double tps = 0;
  double apply_lag_ms = 0;  // ADC only.
};

enum class Mode { kNone, kSdc, kAdc };

const char* ModeName(Mode m) {
  switch (m) {
    case Mode::kNone:
      return "no-backup";
    case Mode::kSdc:
      return "SDC";
    case Mode::kAdc:
      return "ADC+CG";
  }
  return "?";
}

CellResult RunCell(Mode mode, SimDuration one_way_delay,
                   uint32_t queue_depth = 0, int clients = 4) {
  sim::SimEnvironment env;
  // Enterprise all-flash front end: ~200 us cache-hit write.
  storage::ArrayConfig media;
  media.media = block::DeviceLatencyModel{Microseconds(150),
                                          Microseconds(200),
                                          Microseconds(5),
                                          Microseconds(20), 1};
  media.max_concurrent_ios = queue_depth;
  storage::ArrayConfig main_cfg = media;
  main_cfg.serial = "MAIN";
  storage::ArrayConfig backup_cfg = media;
  backup_cfg.serial = "BKUP";
  storage::StorageArray main(&env, main_cfg);
  storage::StorageArray backup(&env, backup_cfg);

  sim::NetworkLinkConfig link_cfg;
  link_cfg.base_latency = one_way_delay;
  link_cfg.jitter = one_way_delay / 10;
  link_cfg.bandwidth_bytes_per_sec = 1.25e9;  // 10 Gbit/s.
  sim::NetworkLink fwd(&env, link_cfg, "fwd");
  sim::NetworkLink rev(&env, link_cfg, "rev");
  replication::ReplicationEngine engine(&env, &main, &backup, &fwd, &rev);

  auto stock = main.CreateVolume("stock", 4096);
  auto sales = main.CreateVolume("sales", 4096);
  auto r_stock = backup.CreateVolume("r-stock", 4096);
  auto r_sales = backup.CreateVolume("r-sales", 4096);
  ZB_CHECK(stock.ok() && sales.ok() && r_stock.ok() && r_sales.ok());

  replication::GroupId group = 0;
  if (mode == Mode::kAdc) {
    replication::ConsistencyGroupConfig cg;
    cg.name = "cg";
    auto g = engine.CreateConsistencyGroup(cg);
    ZB_CHECK(g.ok());
    group = *g;
    for (auto [p, s] : {std::pair{*stock, *r_stock}, {*sales, *r_sales}}) {
      replication::PairConfig pc;
      pc.primary = p;
      pc.secondary = s;
      pc.mode = replication::ReplicationMode::kAsynchronous;
      pc.group = group;
      ZB_CHECK(engine.CreatePair(pc).ok());
    }
  } else if (mode == Mode::kSdc) {
    for (auto [p, s] : {std::pair{*stock, *r_stock}, {*sales, *r_sales}}) {
      replication::PairConfig pc;
      pc.primary = p;
      pc.secondary = s;
      pc.mode = replication::ReplicationMode::kSynchronous;
      ZB_CHECK(engine.CreatePair(pc).ok());
    }
  }
  env.RunFor(Milliseconds(50));  // Initial copies settle.

  // The business transaction's IO pattern: a stock-DB WAL write, then a
  // sales-DB WAL write (dependent, in order — Section II).
  workload::DriverConfig driver_cfg;
  driver_cfg.steps = {workload::TxnIoStep{*stock, 1},
                      workload::TxnIoStep{*sales, 1}};
  driver_cfg.clients = clients;
  workload::ClosedLoopDriver driver(&env, &main, driver_cfg);
  driver.Start();
  env.RunFor(Seconds(2));

  CellResult result;
  if (mode == Mode::kAdc) {
    // Sample the replication lag while the workload is still flowing.
    auto stats = engine.GetGroupStats(group);
    if (stats.ok()) {
      result.apply_lag_ms = ToMilliseconds(stats->apply_lag);
    }
  }
  driver.Stop();
  env.RunFor(Milliseconds(200));  // Drain in-flight txns.

  result.mean_ms = driver.txn_latency().Mean() / 1e6;
  result.p99_ms = driver.txn_latency().Percentile(99) / 1e6;
  result.tps = driver.TxnPerSecond();
  return result;
}

void Run() {
  PrintTitle(
      "E1: transaction latency/throughput vs inter-site delay "
      "(no-backup / SDC / ADC+CG)");
  PrintLine("%10s %10s %10s %10s %10s %12s %12s", "one_way_ms", "mode",
            "mean_ms", "p99_ms", "txn_per_s", "vs_baseline", "adc_lag_ms");
  PrintRule();
  const SimDuration delays[] = {Microseconds(100), Microseconds(500),
                                Milliseconds(1),   Milliseconds(2),
                                Milliseconds(5),   Milliseconds(10),
                                Milliseconds(20),  Milliseconds(50)};
  for (SimDuration delay : delays) {
    CellResult base = RunCell(Mode::kNone, delay);
    for (Mode mode : {Mode::kNone, Mode::kSdc, Mode::kAdc}) {
      CellResult r = mode == Mode::kNone ? base : RunCell(mode, delay);
      PrintLine("%10.1f %10s %10.3f %10.3f %10.0f %11.2fx %12.2f",
                ToMilliseconds(delay), ModeName(mode), r.mean_ms, r.p99_ms,
                r.tps, r.mean_ms / base.mean_ms, r.apply_lag_ms);
    }
    PrintRule();
  }
  PrintLine("Expected shape: SDC mean grows ~linearly with the RTT; ADC "
            "stays within ~5%% of no-backup at every delay.");

  // E1b: the saturation view. With finite front-end credits, SDC's held
  // slots collapse array throughput, not just per-IO latency.
  PrintTitle(
      "E1b: saturated array (16 front-end credits, 64 clients, 5 ms "
      "one-way)");
  PrintLine("%10s %10s %10s %12s", "mode", "mean_ms", "p99_ms",
            "txn_per_s");
  PrintRule();
  for (Mode mode : {Mode::kNone, Mode::kSdc, Mode::kAdc}) {
    CellResult r = RunCell(mode, Milliseconds(5), /*queue_depth=*/16,
                           /*clients=*/64);
    PrintLine("%10s %10.3f %10.3f %12.0f", ModeName(mode), r.mean_ms,
              r.p99_ms, r.tps);
  }
  PrintRule();
  PrintLine("Expected shape: ADC throughput equals no-backup; SDC "
            "collapses by ~RTT/media_latency because every credit is "
            "pinned for the round trip.");
}

}  // namespace
}  // namespace zerobak::bench

int main() {
  zerobak::SetLogLevel(zerobak::LogLevel::kError); zerobak::bench::Run(); }
