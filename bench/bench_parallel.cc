// E14 — Parallel compute layer: host-side throughput of the three hot
// stages the ThreadPool offloads (wire encode, wire decode, batch apply)
// plus the resync extent capture, swept over compute lane counts. Every
// stage's output is cross-checked against the single-lane run first:
// the speedup is only worth reporting if the bytes are bit-identical.
//
// Acceptance (checked only when the host has >= 4 hardware lanes, since
// a 1-core container can only measure oversubscription): wire encode at
// 4 lanes must reach >= 2.5x the single-lane throughput.
//
// Writes BENCH_parallel.json (--out PATH to override); --quick shrinks
// the working set for the ctest smoke run.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/crc32c.h"
#include "common/logging.h"
#include "common/rng.h"
#include "exec/thread_pool.h"
#include "journal/journal.h"
#include "replication/wire.h"
#include "storage/volume.h"

namespace zerobak::bench {
namespace {

using journal::JournalRecord;
using journal::PayloadBuffer;
namespace wire = replication::wire;

constexpr uint32_t kBlockSize = 4096;

struct StagePoint {
  unsigned threads = 0;
  double mb_per_s = 0;
  double speedup = 0;  // vs the single-lane point of the same stage.
};

struct StageResult {
  std::string name;
  std::vector<StagePoint> points;
};

// A shipped batch's worth of journal records: multi-block extents with a
// DB-like mix of structured (compressible) and random (stored-escape)
// pages, sized so the plain body is well past wire::kChunkBytes.
std::vector<JournalRecord> MakeBatch(int records, Rng* rng) {
  std::vector<JournalRecord> batch;
  batch.reserve(records);
  for (int i = 0; i < records; ++i) {
    JournalRecord rec;
    rec.sequence = 1000 + i;
    rec.volume_id = 1 + (i % 4);
    rec.lba = static_cast<uint64_t>(i) * 4;
    rec.block_count = 2;
    rec.ack_time = 1000000 + i;
    rec.atomic_through = 1000 + records - 1;
    std::string payload(2 * kBlockSize, '\0');
    if (i % 3 == 0) {
      for (char& c : payload) c = static_cast<char>(rng->Uniform(256));
    } else {
      // Row-like repetition: compresses well but not trivially.
      for (size_t off = 0; off < payload.size(); ++off) {
        payload[off] = static_cast<char>('a' + (off % 97) % 26);
      }
    }
    rec.payload = PayloadBuffer::Copy(payload);
    batch.push_back(std::move(rec));
  }
  return batch;
}

double MbPerSec(uint64_t bytes, int reps, double seconds) {
  if (seconds <= 0) return 0;
  return static_cast<double>(bytes) * reps / seconds / (1024.0 * 1024.0);
}

template <typename Fn>
double TimeReps(int reps, Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) fn();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

std::unique_ptr<exec::ThreadPool> MakePool(unsigned threads) {
  // threads == 1 exercises the engine's inline path (no pool at all).
  if (threads <= 1) return nullptr;
  return std::make_unique<exec::ThreadPool>(threads);
}

// ---- Stage 1+2: wire encode / decode ----------------------------------

void BenchWire(const std::vector<unsigned>& lane_counts, int records,
               int reps, std::vector<StageResult>* out) {
  Rng rng(1234);
  const auto batch = MakeBatch(records, &rng);
  const wire::EncodedBatch reference =
      wire::EncodeBatch(batch, /*compress=*/true);
  ZB_CHECK(reference.logical_bytes > wire::kChunkBytes)
      << "batch too small to engage the chunked path";

  StageResult encode{"wire_encode", {}};
  StageResult decode{"wire_decode", {}};
  for (unsigned threads : lane_counts) {
    auto pool = MakePool(threads);

    const wire::EncodedBatch check =
        wire::EncodeBatch(batch, true, pool.get());
    ZB_CHECK(check.frame == reference.frame)
        << "encode not lane-count invariant at " << threads << " lanes";
    const double enc_s = TimeReps(reps, [&] {
      wire::EncodedBatch enc = wire::EncodeBatch(batch, true, pool.get());
      ZB_CHECK(enc.frame.size() == reference.frame.size());
    });
    encode.points.push_back(
        {threads, MbPerSec(reference.logical_bytes, reps, enc_s), 0});

    auto decoded = wire::DecodeBatch(reference.frame, pool.get());
    ZB_CHECK(decoded.ok() && decoded->size() == batch.size());
    const double dec_s = TimeReps(reps, [&] {
      auto got = wire::DecodeBatch(reference.frame, pool.get());
      ZB_CHECK(got.ok());
    });
    decode.points.push_back(
        {threads, MbPerSec(reference.logical_bytes, reps, dec_s), 0});
  }
  out->push_back(std::move(encode));
  out->push_back(std::move(decode));
}

// ---- Stage 3: two-phase batch apply -----------------------------------

void BenchApply(const std::vector<unsigned>& lane_counts, int runs_per_batch,
                int reps, std::vector<StageResult>* out) {
  const uint32_t run_blocks = 8;
  const uint64_t volume_blocks =
      static_cast<uint64_t>(runs_per_batch) * run_blocks + 64;
  Rng rng(777);
  std::vector<std::string> payloads;
  std::vector<block::BlockRun> runs;
  for (int i = 0; i < runs_per_batch; ++i) {
    std::string data(static_cast<size_t>(run_blocks) * kBlockSize, '\0');
    for (char& c : data) c = static_cast<char>(rng.Uniform(256));
    payloads.push_back(std::move(data));
  }
  for (int i = 0; i < runs_per_batch; ++i) {
    block::BlockRun run;
    run.lba = static_cast<uint64_t>(i) * run_blocks;  // Sorted, disjoint.
    run.count = run_blocks;
    run.data = payloads[i];
    runs.push_back(run);
  }
  const uint64_t batch_bytes =
      static_cast<uint64_t>(runs_per_batch) * run_blocks * kBlockSize;

  uint32_t reference_crc = 0;
  StageResult apply{"batch_apply", {}};
  for (unsigned threads : lane_counts) {
    auto pool = MakePool(threads);
    storage::Volume volume(1, "bench", volume_blocks, kBlockSize);
    const double s = TimeReps(reps, [&] {
      size_t admitted = 0;
      ZB_CHECK(volume.PrepareRun(runs.data(), runs.size(), &admitted).ok());
      ZB_CHECK(admitted == runs.size());
      if (pool != nullptr) {
        pool->ParallelFor(admitted, 4, [&](size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) volume.CommitRun(runs[i]);
        });
      } else {
        for (size_t i = 0; i < admitted; ++i) volume.CommitRun(runs[i]);
      }
    });
    uint32_t crc = 0;
    for (uint64_t lba = 0; lba < volume_blocks; ++lba) {
      const std::string_view b = volume.store().ReadBlockView(lba);
      crc = Crc32cExtend(crc, b.data(), b.size());
    }
    if (threads == lane_counts.front()) {
      reference_crc = crc;
    } else {
      ZB_CHECK(crc == reference_crc)
          << "apply not lane-count invariant at " << threads << " lanes";
    }
    apply.points.push_back({threads, MbPerSec(batch_bytes, reps, s), 0});
  }
  out->push_back(std::move(apply));
}

// ---- Stage 4: resync extent capture -----------------------------------

void BenchResync(const std::vector<unsigned>& lane_counts, int extents,
                 int reps, std::vector<StageResult>* out) {
  const uint32_t extent_blocks = 16;
  const uint64_t volume_blocks =
      static_cast<uint64_t>(extents) * extent_blocks * 2;
  block::MemVolume volume(volume_blocks, kBlockSize);
  Rng rng(4242);
  std::string data(static_cast<size_t>(extent_blocks) * kBlockSize, '\0');
  std::vector<uint64_t> lbas;
  for (int i = 0; i < extents; ++i) {
    // Every other extent-sized slot dirty: scattered like a real delta.
    const uint64_t lba = static_cast<uint64_t>(i) * extent_blocks * 2;
    for (char& c : data) c = static_cast<char>(rng.Uniform(256));
    ZB_CHECK(volume.Write(lba, extent_blocks, data).ok());
    lbas.push_back(lba);
  }
  const uint64_t capture_bytes =
      static_cast<uint64_t>(extents) * extent_blocks * kBlockSize;

  std::vector<uint32_t> reference_crcs;
  StageResult resync{"resync_capture", {}};
  for (unsigned threads : lane_counts) {
    auto pool = MakePool(threads);
    std::vector<std::string> bufs(lbas.size());
    std::vector<uint32_t> crcs(lbas.size(), 0);
    auto capture = [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        bufs[i].resize(static_cast<size_t>(extent_blocks) * kBlockSize);
        volume.ReadInto(lbas[i], extent_blocks, bufs[i].data());
        crcs[i] = Crc32c(bufs[i].data(), bufs[i].size());
      }
    };
    const double s = TimeReps(reps, [&] {
      if (pool != nullptr) {
        pool->ParallelFor(lbas.size(), 1, capture);
      } else {
        capture(0, lbas.size());
      }
    });
    if (threads == lane_counts.front()) {
      reference_crcs = crcs;
    } else {
      ZB_CHECK(crcs == reference_crcs)
          << "capture not lane-count invariant at " << threads << " lanes";
    }
    resync.points.push_back({threads, MbPerSec(capture_bytes, reps, s), 0});
  }
  out->push_back(std::move(resync));
}

// -----------------------------------------------------------------------

void FillSpeedups(std::vector<StageResult>* results) {
  for (StageResult& stage : *results) {
    if (stage.points.empty()) continue;
    const double base = stage.points.front().mb_per_s;
    for (StagePoint& p : stage.points) {
      p.speedup = base > 0 ? p.mb_per_s / base : 0;
    }
  }
}

void WriteJson(const std::string& path, bool quick,
               const std::vector<StageResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  ZB_CHECK(f != nullptr) << "cannot write " << path;
  std::fprintf(f, "{\n  \"experiment\": \"E14\",\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(f, "  \"hardware_lanes\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"stages\": {\n");
  for (size_t s = 0; s < results.size(); ++s) {
    std::fprintf(f, "    \"%s\": [\n", results[s].name.c_str());
    const auto& pts = results[s].points;
    for (size_t i = 0; i < pts.size(); ++i) {
      std::fprintf(f,
                   "      {\"threads\": %u, \"mb_per_s\": %.1f, "
                   "\"speedup\": %.2f}%s\n",
                   pts[i].threads, pts[i].mb_per_s, pts[i].speedup,
                   i + 1 < pts.size() ? "," : "");
    }
    std::fprintf(f, "    ]%s\n", s + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
}

int Run(bool quick, const std::string& out_path) {
  // On a wide host, sweep past 4 lanes; on a narrow one, still run the
  // sweep — the determinism cross-checks are host-independent even when
  // the timings only show oversubscription.
  const std::vector<unsigned> lane_counts = {1, 2, 4, 8};
  std::vector<StageResult> results;

  const int records = quick ? 96 : 768;          // 8 KiB payload each.
  const int wire_reps = quick ? 3 : 20;
  BenchWire(lane_counts, records, wire_reps, &results);

  const int runs = quick ? 128 : 1024;           // 32 KiB each.
  const int apply_reps = quick ? 3 : 20;
  BenchApply(lane_counts, runs, apply_reps, &results);

  const int extents = quick ? 64 : 512;          // 64 KiB each.
  const int resync_reps = quick ? 3 : 20;
  BenchResync(lane_counts, extents, resync_reps, &results);

  FillSpeedups(&results);

  for (const StageResult& stage : results) {
    std::printf("%-14s", stage.name.c_str());
    for (const StagePoint& p : stage.points) {
      std::printf("  %ut: %8.1f MB/s (%.2fx)", p.threads, p.mb_per_s,
                  p.speedup);
    }
    std::printf("\n");
  }

  // Acceptance: only meaningful with real hardware lanes to scale onto.
  if (std::thread::hardware_concurrency() >= 4 && !quick) {
    for (const StageResult& stage : results) {
      if (stage.name != "wire_encode") continue;
      for (const StagePoint& p : stage.points) {
        if (p.threads == 4) {
          ZB_CHECK(p.speedup >= 2.5)
              << "wire encode at 4 lanes only " << p.speedup
              << "x over single-lane (want >= 2.5x)";
        }
      }
    }
  }

  WriteJson(out_path, quick, results);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace zerobak::bench

int main(int argc, char** argv) {
  zerobak::SetLogLevel(zerobak::LogLevel::kError);
  bool quick = false;
  std::string out_path = "BENCH_parallel.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }
  return zerobak::bench::Run(quick, out_path);
}
