// E12 — What the observability layer costs and what it shows.
//
//   E12a Instrumentation overhead on the E10 fold workload (hot-10%
//        skewed overwrites at 20k writes/s, folding on, 1 Gbit/s link):
//        the identical run with the metric registry, trace ring, link and
//        journal instruments and a 10 ms RpoTracker attached, vs fully
//        detached. The simulation is deterministic, so sim-side results
//        (applies, bytes, fold counts) must be bit-identical either way;
//        the overhead is host CPU, reported as applies per host-second
//        and a percent slowdown. Acceptance: < 2%.
//   E12b Continuous RPO vs inter-site link latency: the same workload
//        swept across base latencies, with the RpoTracker sampling every
//        millisecond. Reports mean/p99/max RPO from the tracker's
//        histogram — the time-series answer to "how much data is at risk
//        right now", which GroupStats::apply_lag used to misreport for
//        idle groups.
//
// Writes the results as JSON (default BENCH_observe.json; --out PATH to
// override). --quick shrinks durations for the ctest smoke run; the
// committed JSON comes from the full run via scripts/run_benches.sh.
#include <algorithm>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/rpo.h"
#include "obs/trace.h"
#include "replication/replication.h"

namespace zerobak::bench {
namespace {

struct Rig {
  std::unique_ptr<sim::SimEnvironment> env;
  std::unique_ptr<storage::StorageArray> main;
  std::unique_ptr<storage::StorageArray> backup;
  std::unique_ptr<sim::NetworkLink> fwd;
  std::unique_ptr<sim::NetworkLink> rev;
  std::unique_ptr<replication::ReplicationEngine> engine;
  // Present only in instrumented runs.
  std::unique_ptr<obs::MetricRegistry> registry;
  std::unique_ptr<obs::TraceRing> trace;
  std::unique_ptr<obs::RpoTracker> tracker;
};

Rig MakeRig(SimDuration link_latency, bool observed) {
  Rig rig;
  rig.env = std::make_unique<sim::SimEnvironment>();
  storage::ArrayConfig zero;
  zero.media = block::DeviceLatencyModel{0, 0, 0, 0, 1};
  storage::ArrayConfig main_cfg = zero;
  main_cfg.serial = "MAIN";
  storage::ArrayConfig backup_cfg = zero;
  backup_cfg.serial = "BKUP";
  rig.main = std::make_unique<storage::StorageArray>(rig.env.get(), main_cfg);
  rig.backup =
      std::make_unique<storage::StorageArray>(rig.env.get(), backup_cfg);
  sim::NetworkLinkConfig link_cfg;
  link_cfg.base_latency = link_latency;
  link_cfg.jitter = 0;
  link_cfg.bandwidth_bytes_per_sec = 1.25e8;  // 1 Gbit/s.
  rig.fwd = std::make_unique<sim::NetworkLink>(rig.env.get(), link_cfg, "fwd");
  rig.rev = std::make_unique<sim::NetworkLink>(rig.env.get(), link_cfg, "rev");
  rig.engine = std::make_unique<replication::ReplicationEngine>(
      rig.env.get(), rig.main.get(), rig.backup.get(), rig.fwd.get(),
      rig.rev.get());
  if (observed) {
    rig.registry = std::make_unique<obs::MetricRegistry>();
    rig.trace = std::make_unique<obs::TraceRing>(8192);
    rig.engine->AttachObservability(rig.registry.get(), rig.trace.get());
    auto wire_link = [&](sim::NetworkLink* link, const std::string& prefix,
                         uint64_t trace_id) {
      sim::NetworkLink::Instruments ins;
      ins.messages = rig.registry->GetCounter(prefix + ".messages");
      ins.wire_bytes = rig.registry->GetCounter(prefix + ".wire_bytes");
      ins.dropped = rig.registry->GetCounter(prefix + ".dropped");
      ins.send_failures = rig.registry->GetCounter(prefix + ".send_failures");
      link->AttachObservability(ins, rig.trace.get(), trace_id);
    };
    wire_link(rig.fwd.get(), "link.to_backup", 1);
    wire_link(rig.rev.get(), "link.to_main", 2);
  }
  return rig;
}

// ---- The shared workload: E10a's skewed-overwrite fold scenario -------------

constexpr uint64_t kBlocks = 1024;
constexpr uint64_t kHot = kBlocks / 10;  // Hot 10% takes 90% of writes.
constexpr double kRate = 20000.0;        // Host writes per second.

struct RunResult {
  uint64_t applied = 0;          // Records applied in the window (sim).
  uint64_t wire_bytes = 0;       // Determinism check against the twin run.
  double host_seconds = 0;       // Wall clock for the measured window.
  double applies_per_sim_sec = 0;
  double applies_per_host_sec = 0;
  // Populated from the RpoTracker in observed runs.
  uint64_t rpo_samples = 0;
  double rpo_mean_ms = 0;
  double rpo_p99_ms = 0;
  double rpo_max_ms = 0;
};

RunResult RunFoldWorkload(SimDuration link_latency, bool observed,
                          SimDuration rpo_interval, bool quick) {
  const SimDuration warmup = quick ? Milliseconds(32) : Milliseconds(160);
  const SimDuration measure = quick ? Milliseconds(96) : Milliseconds(640);

  Rig rig = MakeRig(link_latency, observed);
  auto p = rig.main->CreateVolume("p", kBlocks);
  auto s = rig.backup->CreateVolume("s", kBlocks);
  ZB_CHECK(p.ok() && s.ok());
  replication::ConsistencyGroupConfig cg;
  cg.name = "fold";
  cg.transfer_interval = Milliseconds(16);
  cg.journal_capacity_bytes = 64ull << 20;
  cg.enable_write_folding = true;
  auto group = rig.engine->CreateConsistencyGroup(cg);
  ZB_CHECK(group.ok());
  replication::PairConfig pc;
  pc.name = "pair";
  pc.primary = *p;
  pc.secondary = *s;
  pc.mode = replication::ReplicationMode::kAsynchronous;
  pc.group = *group;
  ZB_CHECK(rig.engine->CreatePair(pc).ok());
  if (observed) {
    rig.tracker = std::make_unique<obs::RpoTracker>(
        rig.env.get(),
        [&rig] {
          std::vector<obs::RpoTracker::GroupSample> samples;
          for (replication::GroupId id : rig.engine->ListGroups()) {
            auto rpo = rig.engine->GroupRpo(id);
            if (rpo.ok()) samples.push_back({id, *rpo});
          }
          return samples;
        },
        rpo_interval);
    rig.tracker->Start();
  }
  rig.env->RunFor(Milliseconds(20));

  Rng rng(17);
  const auto period = static_cast<SimDuration>(kSecond / kRate);
  const std::string payload(block::kDefaultBlockSize, 'w');
  auto next_lba = [&] {
    return rng.Uniform(10) < 9 ? rng.Uniform(kHot)
                               : kHot + rng.Uniform(kBlocks - kHot);
  };

  const SimTime warm_until = rig.env->now() + warmup;
  while (rig.env->now() < warm_until) {
    ZB_CHECK(rig.main->WriteSync(*p, next_lba(), payload).ok());
    rig.env->RunFor(period);
  }

  auto before = rig.engine->GetGroupStats(*group);
  ZB_CHECK(before.ok());
  const uint64_t wire_before = rig.fwd->bytes_sent();
  const SimTime t0 = rig.env->now();
  const SimTime until = rig.env->now() + measure;
  const auto host0 = std::chrono::steady_clock::now();
  while (rig.env->now() < until) {
    ZB_CHECK(rig.main->WriteSync(*p, next_lba(), payload).ok());
    rig.env->RunFor(period);
  }
  const auto host1 = std::chrono::steady_clock::now();
  auto after = rig.engine->GetGroupStats(*group);
  ZB_CHECK(after.ok());

  RunResult res;
  res.applied = after->applied - before->applied;
  res.wire_bytes = rig.fwd->bytes_sent() - wire_before;
  res.host_seconds = std::chrono::duration<double>(host1 - host0).count();
  const double sim_seconds = double(rig.env->now() - t0) / double(kSecond);
  res.applies_per_sim_sec = double(res.applied) / sim_seconds;
  res.applies_per_host_sec =
      res.host_seconds > 0 ? double(res.applied) / res.host_seconds : 0;
  if (observed && rig.tracker != nullptr) {
    rig.tracker->Stop();
    const obs::GroupRpoSeries* series = rig.tracker->series(*group);
    if (series != nullptr) {
      res.rpo_samples = series->samples;
      res.rpo_mean_ms = series->histogram.Mean() / double(kMillisecond);
      res.rpo_p99_ms =
          series->histogram.Percentile(99) / double(kMillisecond);
      res.rpo_max_ms = double(series->max_rpo) / double(kMillisecond);
    }
  }
  return res;
}

// ---- E12a: overhead ---------------------------------------------------------

struct OverheadResult {
  RunResult detached;
  RunResult attached;
  double overhead_pct = 0;  // Host-throughput loss from instrumentation.
  bool deterministic = false;
};

OverheadResult MeasureOverhead(bool quick) {
  // Alternate attached/detached runs and keep the best host time of each,
  // so a scheduler hiccup in one run cannot masquerade as overhead.
  const int iters = quick ? 2 : 5;
  OverheadResult out;
  out.detached.host_seconds = 1e9;
  out.attached.host_seconds = 1e9;
  for (int it = 0; it < iters; ++it) {
    RunResult off = RunFoldWorkload(Milliseconds(5), false, 0, quick);
    RunResult on =
        RunFoldWorkload(Milliseconds(5), true, Milliseconds(10), quick);
    if (off.host_seconds < out.detached.host_seconds) out.detached = off;
    if (on.host_seconds < out.attached.host_seconds) out.attached = on;
  }
  out.deterministic =
      out.detached.applied == out.attached.applied &&
      out.detached.wire_bytes == out.attached.wire_bytes;
  out.overhead_pct =
      out.detached.applies_per_host_sec > 0
          ? 100.0 * (1.0 - out.attached.applies_per_host_sec /
                               out.detached.applies_per_host_sec)
          : 0;
  return out;
}

// ---- E12b: RPO vs link latency ----------------------------------------------

struct LatencyCell {
  SimDuration latency;
  RunResult r;
};

std::vector<LatencyCell> RunLatencySweep(bool quick) {
  std::vector<LatencyCell> cells;
  for (const int ms : {1, 2, 5, 10, 20, 50}) {
    LatencyCell cell;
    cell.latency = Milliseconds(ms);
    // 1 ms sampling: fine enough to see the transfer-cycle sawtooth.
    cell.r = RunFoldWorkload(cell.latency, true, Milliseconds(1), quick);
    cells.push_back(cell);
  }
  return cells;
}

// ---- JSON + table output ----------------------------------------------------

void WriteJson(const std::string& path, bool quick, const OverheadResult& ov,
               const std::vector<LatencyCell>& sweep) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  ZB_CHECK(f != nullptr);
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"bench_observe\",\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(f, "  \"overhead\": {\n");
  auto run_obj = [&](const char* key, const RunResult& r, const char* tail) {
    std::fprintf(f,
                 "    \"%s\": {\"applied\": %llu, \"wire_bytes\": %llu, "
                 "\"host_seconds\": %.6f, \"applies_per_sim_sec\": %.0f, "
                 "\"applies_per_host_sec\": %.0f}%s\n",
                 key, (unsigned long long)r.applied,
                 (unsigned long long)r.wire_bytes, r.host_seconds,
                 r.applies_per_sim_sec, r.applies_per_host_sec, tail);
  };
  run_obj("detached", ov.detached, ",");
  run_obj("attached", ov.attached, ",");
  std::fprintf(f, "    \"sim_results_identical\": %s,\n",
               ov.deterministic ? "true" : "false");
  std::fprintf(f, "    \"overhead_pct\": %.3f\n", ov.overhead_pct);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"rpo_vs_latency\": [\n");
  for (size_t i = 0; i < sweep.size(); ++i) {
    const LatencyCell& c = sweep[i];
    std::fprintf(f,
                 "    {\"link_latency_ms\": %lld, \"samples\": %llu, "
                 "\"rpo_mean_ms\": %.3f, \"rpo_p99_ms\": %.3f, "
                 "\"rpo_max_ms\": %.3f}%s\n",
                 (long long)(c.latency / kMillisecond),
                 (unsigned long long)c.r.rpo_samples, c.r.rpo_mean_ms,
                 c.r.rpo_p99_ms, c.r.rpo_max_ms,
                 i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
}

int Run(bool quick, const std::string& out_path) {
  PrintTitle("E12a: instrumentation overhead on the E10 fold workload "
             "(metrics + trace + link/journal instruments + 10 ms "
             "RpoTracker)");
  PrintLine("%12s %12s %14s %18s %18s", "mode", "applied", "host_ms",
            "applies_per_sim_s", "applies_per_host_s");
  PrintRule();
  OverheadResult ov = MeasureOverhead(quick);
  for (const auto& [label, r] :
       {std::pair<const char*, const RunResult&>{"detached", ov.detached},
        {"attached", ov.attached}}) {
    PrintLine("%12s %12llu %14.2f %18.0f %18.0f", label,
              (unsigned long long)r.applied, r.host_seconds * 1e3,
              r.applies_per_sim_sec, r.applies_per_host_sec);
  }
  PrintRule();
  PrintLine("sim results identical: %s   host overhead: %.2f%% "
            "(acceptance: < 2%%)",
            ov.deterministic ? "yes" : "NO", ov.overhead_pct);
  ZB_CHECK(ov.deterministic);  // Instruments must not perturb the sim.

  PrintTitle("E12b: continuous RPO vs inter-site link latency "
             "(1 ms RpoTracker sampling, 16 ms transfer cycle)");
  PrintLine("%14s %10s %12s %12s %12s", "latency_ms", "samples", "mean_ms",
            "p99_ms", "max_ms");
  PrintRule();
  std::vector<LatencyCell> sweep = RunLatencySweep(quick);
  for (const LatencyCell& c : sweep) {
    PrintLine("%14lld %10llu %12.2f %12.2f %12.2f",
              (long long)(c.latency / kMillisecond),
              (unsigned long long)c.r.rpo_samples, c.r.rpo_mean_ms,
              c.r.rpo_p99_ms, c.r.rpo_max_ms);
  }
  PrintRule();

  WriteJson(out_path, quick, ov, sweep);
  PrintLine("wrote %s", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace zerobak::bench

int main(int argc, char** argv) {
  zerobak::SetLogLevel(zerobak::LogLevel::kError);
  bool quick = false;
  std::string out_path = "BENCH_observe.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }
  return zerobak::bench::Run(quick, out_path);
}
