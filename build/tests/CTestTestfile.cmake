# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/block_test[1]_include.cmake")
include("/root/repo/build/tests/journal_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/replication_test[1]_include.cmake")
include("/root/repo/build/tests/snapshot_test[1]_include.cmake")
include("/root/repo/build/tests/container_test[1]_include.cmake")
include("/root/repo/build/tests/db_test[1]_include.cmake")
include("/root/repo/build/tests/csi_test[1]_include.cmake")
include("/root/repo/build/tests/nso_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
