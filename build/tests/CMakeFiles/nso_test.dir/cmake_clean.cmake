file(REMOVE_RECURSE
  "CMakeFiles/nso_test.dir/nso/namespace_operator_test.cc.o"
  "CMakeFiles/nso_test.dir/nso/namespace_operator_test.cc.o.d"
  "nso_test"
  "nso_test.pdb"
  "nso_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nso_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
