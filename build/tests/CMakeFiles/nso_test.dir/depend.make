# Empty dependencies file for nso_test.
# This may be replaced when dependencies are built.
