file(REMOVE_RECURSE
  "CMakeFiles/csi_test.dir/csi/provisioner_test.cc.o"
  "CMakeFiles/csi_test.dir/csi/provisioner_test.cc.o.d"
  "CMakeFiles/csi_test.dir/csi/replication_controller_test.cc.o"
  "CMakeFiles/csi_test.dir/csi/replication_controller_test.cc.o.d"
  "CMakeFiles/csi_test.dir/csi/schedule_controller_test.cc.o"
  "CMakeFiles/csi_test.dir/csi/schedule_controller_test.cc.o.d"
  "CMakeFiles/csi_test.dir/csi/snapshot_controller_test.cc.o"
  "CMakeFiles/csi_test.dir/csi/snapshot_controller_test.cc.o.d"
  "csi_test"
  "csi_test.pdb"
  "csi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
