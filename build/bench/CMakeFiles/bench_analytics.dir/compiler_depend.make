# Empty compiler generated dependencies file for bench_analytics.
# This may be replaced when dependencies are built.
