file(REMOVE_RECURSE
  "CMakeFiles/bench_rpo.dir/bench_rpo.cc.o"
  "CMakeFiles/bench_rpo.dir/bench_rpo.cc.o.d"
  "bench_rpo"
  "bench_rpo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rpo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
