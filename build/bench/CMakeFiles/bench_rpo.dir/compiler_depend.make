# Empty compiler generated dependencies file for bench_rpo.
# This may be replaced when dependencies are built.
