file(REMOVE_RECURSE
  "CMakeFiles/bench_dr.dir/bench_dr.cc.o"
  "CMakeFiles/bench_dr.dir/bench_dr.cc.o.d"
  "bench_dr"
  "bench_dr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
