# Empty compiler generated dependencies file for bench_dr.
# This may be replaced when dependencies are built.
