file(REMOVE_RECURSE
  "CMakeFiles/bench_operator.dir/bench_operator.cc.o"
  "CMakeFiles/bench_operator.dir/bench_operator.cc.o.d"
  "bench_operator"
  "bench_operator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_operator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
