# Empty dependencies file for zb_workload.
# This may be replaced when dependencies are built.
