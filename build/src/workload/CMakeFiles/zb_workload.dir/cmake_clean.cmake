file(REMOVE_RECURSE
  "CMakeFiles/zb_workload.dir/analytics.cc.o"
  "CMakeFiles/zb_workload.dir/analytics.cc.o.d"
  "CMakeFiles/zb_workload.dir/ecommerce.cc.o"
  "CMakeFiles/zb_workload.dir/ecommerce.cc.o.d"
  "CMakeFiles/zb_workload.dir/invariants.cc.o"
  "CMakeFiles/zb_workload.dir/invariants.cc.o.d"
  "CMakeFiles/zb_workload.dir/kv_workload.cc.o"
  "CMakeFiles/zb_workload.dir/kv_workload.cc.o.d"
  "CMakeFiles/zb_workload.dir/latency_driver.cc.o"
  "CMakeFiles/zb_workload.dir/latency_driver.cc.o.d"
  "libzb_workload.a"
  "libzb_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zb_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
