file(REMOVE_RECURSE
  "libzb_workload.a"
)
