
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/analytics.cc" "src/workload/CMakeFiles/zb_workload.dir/analytics.cc.o" "gcc" "src/workload/CMakeFiles/zb_workload.dir/analytics.cc.o.d"
  "/root/repo/src/workload/ecommerce.cc" "src/workload/CMakeFiles/zb_workload.dir/ecommerce.cc.o" "gcc" "src/workload/CMakeFiles/zb_workload.dir/ecommerce.cc.o.d"
  "/root/repo/src/workload/invariants.cc" "src/workload/CMakeFiles/zb_workload.dir/invariants.cc.o" "gcc" "src/workload/CMakeFiles/zb_workload.dir/invariants.cc.o.d"
  "/root/repo/src/workload/kv_workload.cc" "src/workload/CMakeFiles/zb_workload.dir/kv_workload.cc.o" "gcc" "src/workload/CMakeFiles/zb_workload.dir/kv_workload.cc.o.d"
  "/root/repo/src/workload/latency_driver.cc" "src/workload/CMakeFiles/zb_workload.dir/latency_driver.cc.o" "gcc" "src/workload/CMakeFiles/zb_workload.dir/latency_driver.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/zb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/zb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/zb_db.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/zb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/block/CMakeFiles/zb_block.dir/DependInfo.cmake"
  "/root/repo/build/src/journal/CMakeFiles/zb_journal.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
