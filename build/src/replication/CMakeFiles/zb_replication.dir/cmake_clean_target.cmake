file(REMOVE_RECURSE
  "libzb_replication.a"
)
