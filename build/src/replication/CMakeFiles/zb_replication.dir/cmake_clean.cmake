file(REMOVE_RECURSE
  "CMakeFiles/zb_replication.dir/replication.cc.o"
  "CMakeFiles/zb_replication.dir/replication.cc.o.d"
  "libzb_replication.a"
  "libzb_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zb_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
