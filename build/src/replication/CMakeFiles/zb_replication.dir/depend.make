# Empty dependencies file for zb_replication.
# This may be replaced when dependencies are built.
