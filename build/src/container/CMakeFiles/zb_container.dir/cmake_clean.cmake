file(REMOVE_RECURSE
  "CMakeFiles/zb_container.dir/api_server.cc.o"
  "CMakeFiles/zb_container.dir/api_server.cc.o.d"
  "CMakeFiles/zb_container.dir/controller.cc.o"
  "CMakeFiles/zb_container.dir/controller.cc.o.d"
  "libzb_container.a"
  "libzb_container.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zb_container.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
