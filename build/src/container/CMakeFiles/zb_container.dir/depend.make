# Empty dependencies file for zb_container.
# This may be replaced when dependencies are built.
