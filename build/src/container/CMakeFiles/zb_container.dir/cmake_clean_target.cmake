file(REMOVE_RECURSE
  "libzb_container.a"
)
