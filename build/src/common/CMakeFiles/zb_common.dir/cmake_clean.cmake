file(REMOVE_RECURSE
  "CMakeFiles/zb_common.dir/crc32c.cc.o"
  "CMakeFiles/zb_common.dir/crc32c.cc.o.d"
  "CMakeFiles/zb_common.dir/histogram.cc.o"
  "CMakeFiles/zb_common.dir/histogram.cc.o.d"
  "CMakeFiles/zb_common.dir/logging.cc.o"
  "CMakeFiles/zb_common.dir/logging.cc.o.d"
  "CMakeFiles/zb_common.dir/rng.cc.o"
  "CMakeFiles/zb_common.dir/rng.cc.o.d"
  "CMakeFiles/zb_common.dir/status.cc.o"
  "CMakeFiles/zb_common.dir/status.cc.o.d"
  "CMakeFiles/zb_common.dir/time.cc.o"
  "CMakeFiles/zb_common.dir/time.cc.o.d"
  "CMakeFiles/zb_common.dir/value.cc.o"
  "CMakeFiles/zb_common.dir/value.cc.o.d"
  "libzb_common.a"
  "libzb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
