# Empty compiler generated dependencies file for zb_common.
# This may be replaced when dependencies are built.
