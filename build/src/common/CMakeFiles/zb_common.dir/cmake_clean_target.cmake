file(REMOVE_RECURSE
  "libzb_common.a"
)
