# Empty compiler generated dependencies file for zb_journal.
# This may be replaced when dependencies are built.
