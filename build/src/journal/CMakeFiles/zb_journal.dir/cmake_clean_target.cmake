file(REMOVE_RECURSE
  "libzb_journal.a"
)
