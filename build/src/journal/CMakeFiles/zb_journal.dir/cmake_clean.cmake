file(REMOVE_RECURSE
  "CMakeFiles/zb_journal.dir/journal.cc.o"
  "CMakeFiles/zb_journal.dir/journal.cc.o.d"
  "libzb_journal.a"
  "libzb_journal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zb_journal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
