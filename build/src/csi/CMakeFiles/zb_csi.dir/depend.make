# Empty dependencies file for zb_csi.
# This may be replaced when dependencies are built.
