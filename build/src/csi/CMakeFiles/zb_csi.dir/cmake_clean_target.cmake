file(REMOVE_RECURSE
  "libzb_csi.a"
)
