file(REMOVE_RECURSE
  "CMakeFiles/zb_csi.dir/provisioner.cc.o"
  "CMakeFiles/zb_csi.dir/provisioner.cc.o.d"
  "CMakeFiles/zb_csi.dir/replication_controller.cc.o"
  "CMakeFiles/zb_csi.dir/replication_controller.cc.o.d"
  "CMakeFiles/zb_csi.dir/schedule_controller.cc.o"
  "CMakeFiles/zb_csi.dir/schedule_controller.cc.o.d"
  "CMakeFiles/zb_csi.dir/snapshot_controller.cc.o"
  "CMakeFiles/zb_csi.dir/snapshot_controller.cc.o.d"
  "libzb_csi.a"
  "libzb_csi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zb_csi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
