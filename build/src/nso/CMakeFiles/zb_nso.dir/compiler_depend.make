# Empty compiler generated dependencies file for zb_nso.
# This may be replaced when dependencies are built.
