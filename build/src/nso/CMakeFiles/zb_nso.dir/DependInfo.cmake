
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nso/namespace_operator.cc" "src/nso/CMakeFiles/zb_nso.dir/namespace_operator.cc.o" "gcc" "src/nso/CMakeFiles/zb_nso.dir/namespace_operator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/zb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/container/CMakeFiles/zb_container.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/zb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
