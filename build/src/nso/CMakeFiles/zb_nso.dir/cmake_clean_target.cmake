file(REMOVE_RECURSE
  "libzb_nso.a"
)
