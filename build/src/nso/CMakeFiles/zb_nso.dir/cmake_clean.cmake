file(REMOVE_RECURSE
  "CMakeFiles/zb_nso.dir/namespace_operator.cc.o"
  "CMakeFiles/zb_nso.dir/namespace_operator.cc.o.d"
  "libzb_nso.a"
  "libzb_nso.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zb_nso.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
