file(REMOVE_RECURSE
  "CMakeFiles/zb_sim.dir/environment.cc.o"
  "CMakeFiles/zb_sim.dir/environment.cc.o.d"
  "CMakeFiles/zb_sim.dir/event_queue.cc.o"
  "CMakeFiles/zb_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/zb_sim.dir/network.cc.o"
  "CMakeFiles/zb_sim.dir/network.cc.o.d"
  "libzb_sim.a"
  "libzb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
