file(REMOVE_RECURSE
  "libzb_sim.a"
)
