# Empty compiler generated dependencies file for zb_block.
# This may be replaced when dependencies are built.
