
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/block/async_device.cc" "src/block/CMakeFiles/zb_block.dir/async_device.cc.o" "gcc" "src/block/CMakeFiles/zb_block.dir/async_device.cc.o.d"
  "/root/repo/src/block/file_volume.cc" "src/block/CMakeFiles/zb_block.dir/file_volume.cc.o" "gcc" "src/block/CMakeFiles/zb_block.dir/file_volume.cc.o.d"
  "/root/repo/src/block/mem_volume.cc" "src/block/CMakeFiles/zb_block.dir/mem_volume.cc.o" "gcc" "src/block/CMakeFiles/zb_block.dir/mem_volume.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/zb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/zb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
