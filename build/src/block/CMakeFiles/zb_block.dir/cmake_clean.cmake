file(REMOVE_RECURSE
  "CMakeFiles/zb_block.dir/async_device.cc.o"
  "CMakeFiles/zb_block.dir/async_device.cc.o.d"
  "CMakeFiles/zb_block.dir/file_volume.cc.o"
  "CMakeFiles/zb_block.dir/file_volume.cc.o.d"
  "CMakeFiles/zb_block.dir/mem_volume.cc.o"
  "CMakeFiles/zb_block.dir/mem_volume.cc.o.d"
  "libzb_block.a"
  "libzb_block.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zb_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
