file(REMOVE_RECURSE
  "libzb_block.a"
)
