file(REMOVE_RECURSE
  "libzb_db.a"
)
