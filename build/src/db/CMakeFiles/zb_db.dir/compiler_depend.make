# Empty compiler generated dependencies file for zb_db.
# This may be replaced when dependencies are built.
