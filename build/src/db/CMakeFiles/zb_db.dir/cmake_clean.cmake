file(REMOVE_RECURSE
  "CMakeFiles/zb_db.dir/format.cc.o"
  "CMakeFiles/zb_db.dir/format.cc.o.d"
  "CMakeFiles/zb_db.dir/minidb.cc.o"
  "CMakeFiles/zb_db.dir/minidb.cc.o.d"
  "libzb_db.a"
  "libzb_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zb_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
