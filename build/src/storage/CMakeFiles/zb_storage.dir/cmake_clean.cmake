file(REMOVE_RECURSE
  "CMakeFiles/zb_storage.dir/array.cc.o"
  "CMakeFiles/zb_storage.dir/array.cc.o.d"
  "CMakeFiles/zb_storage.dir/volume.cc.o"
  "CMakeFiles/zb_storage.dir/volume.cc.o.d"
  "libzb_storage.a"
  "libzb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
