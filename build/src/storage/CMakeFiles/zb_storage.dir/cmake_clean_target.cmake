file(REMOVE_RECURSE
  "libzb_storage.a"
)
