# Empty compiler generated dependencies file for zb_storage.
# This may be replaced when dependencies are built.
