file(REMOVE_RECURSE
  "CMakeFiles/zb_core.dir/console.cc.o"
  "CMakeFiles/zb_core.dir/console.cc.o.d"
  "CMakeFiles/zb_core.dir/demo_system.cc.o"
  "CMakeFiles/zb_core.dir/demo_system.cc.o.d"
  "CMakeFiles/zb_core.dir/inspect.cc.o"
  "CMakeFiles/zb_core.dir/inspect.cc.o.d"
  "CMakeFiles/zb_core.dir/restore.cc.o"
  "CMakeFiles/zb_core.dir/restore.cc.o.d"
  "CMakeFiles/zb_core.dir/verify.cc.o"
  "CMakeFiles/zb_core.dir/verify.cc.o.d"
  "libzb_core.a"
  "libzb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
