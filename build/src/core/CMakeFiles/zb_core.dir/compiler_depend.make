# Empty compiler generated dependencies file for zb_core.
# This may be replaced when dependencies are built.
