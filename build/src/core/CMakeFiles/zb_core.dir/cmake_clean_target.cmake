file(REMOVE_RECURSE
  "libzb_core.a"
)
