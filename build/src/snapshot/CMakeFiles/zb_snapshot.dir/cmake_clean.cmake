file(REMOVE_RECURSE
  "CMakeFiles/zb_snapshot.dir/snapshot.cc.o"
  "CMakeFiles/zb_snapshot.dir/snapshot.cc.o.d"
  "libzb_snapshot.a"
  "libzb_snapshot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zb_snapshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
