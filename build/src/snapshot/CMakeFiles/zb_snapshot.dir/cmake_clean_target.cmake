file(REMOVE_RECURSE
  "libzb_snapshot.a"
)
