# Empty dependencies file for zb_snapshot.
# This may be replaced when dependencies are built.
