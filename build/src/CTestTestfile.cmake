# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("block")
subdirs("journal")
subdirs("storage")
subdirs("replication")
subdirs("snapshot")
subdirs("container")
subdirs("csi")
subdirs("nso")
subdirs("db")
subdirs("workload")
subdirs("core")
