
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/disaster_recovery.cpp" "examples/CMakeFiles/disaster_recovery.dir/disaster_recovery.cpp.o" "gcc" "examples/CMakeFiles/disaster_recovery.dir/disaster_recovery.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/zb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/csi/CMakeFiles/zb_csi.dir/DependInfo.cmake"
  "/root/repo/build/src/nso/CMakeFiles/zb_nso.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/zb_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/zb_db.dir/DependInfo.cmake"
  "/root/repo/build/src/replication/CMakeFiles/zb_replication.dir/DependInfo.cmake"
  "/root/repo/build/src/snapshot/CMakeFiles/zb_snapshot.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/zb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/journal/CMakeFiles/zb_journal.dir/DependInfo.cmake"
  "/root/repo/build/src/block/CMakeFiles/zb_block.dir/DependInfo.cmake"
  "/root/repo/build/src/container/CMakeFiles/zb_container.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/zb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/zb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
