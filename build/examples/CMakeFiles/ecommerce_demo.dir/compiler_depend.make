# Empty compiler generated dependencies file for ecommerce_demo.
# This may be replaced when dependencies are built.
