file(REMOVE_RECURSE
  "CMakeFiles/ecommerce_demo.dir/ecommerce_demo.cpp.o"
  "CMakeFiles/ecommerce_demo.dir/ecommerce_demo.cpp.o.d"
  "ecommerce_demo"
  "ecommerce_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecommerce_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
