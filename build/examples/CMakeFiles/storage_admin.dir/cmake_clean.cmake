file(REMOVE_RECURSE
  "CMakeFiles/storage_admin.dir/storage_admin.cpp.o"
  "CMakeFiles/storage_admin.dir/storage_admin.cpp.o.d"
  "storage_admin"
  "storage_admin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_admin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
