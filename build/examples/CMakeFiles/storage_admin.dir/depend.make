# Empty dependencies file for storage_admin.
# This may be replaced when dependencies are built.
